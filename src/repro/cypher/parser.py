"""Recursive-descent parser for the core Cypher grammar (Figure 3).

The Seraph parser (:mod:`repro.seraph.parser`) subclasses
:class:`CypherParser` and reuses all expression/pattern/clause machinery,
mirroring how the language in the paper "compositionally enriches" Cypher.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cypher import ast
from repro.cypher.lexer import tokenize
from repro.cypher.tokens import Token, TokenKind
from repro.errors import CypherSyntaxError

_COMPARISON_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NEQ: "<>",
    TokenKind.LT: "<",
    TokenKind.GT: ">",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
}

_QUANTIFIERS = ("ALL", "ANY", "NONE", "SINGLE")

_SHORTEST_FUNCTIONS = {"shortestpath": "shortestPath",
                       "allshortestpaths": "allShortestPaths"}


class CypherParser:
    """Parses one token stream into a :class:`repro.cypher.ast.Query`."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _match_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {kind.value} {context}, got {token.text!r}")
        return self._advance()

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise self._error(f"expected {name}, got {token.text or token.kind.value!r}")
        return self._advance()

    def _error(self, message: str) -> CypherSyntaxError:
        token = self._peek()
        return CypherSyntaxError(message, token.line, token.column)

    def _name_token(self, context: str) -> str:
        """An identifier, allowing non-reserved use of keywords as names."""
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.value
        if token.kind is TokenKind.KEYWORD:
            self._advance()
            return token.value  # original spelling, not the uppercased form
        raise self._error(f"expected a name {context}, got {token.text!r}")

    # -- entry points ---------------------------------------------------------

    def parse_query(self) -> ast.Query:
        """Parse a complete query (with UNION) and require EOF."""
        query = self.parse_query_body()
        self._match(TokenKind.SEMICOLON)
        if not self._check(TokenKind.EOF):
            raise self._error(f"unexpected trailing input {self._peek().text!r}")
        return query

    def parse_query_body(self) -> ast.Query:
        parts = [self.parse_single_query()]
        union_all: List[bool] = []
        while self._match_keyword("UNION"):
            union_all.append(self._match_keyword("ALL") is not None)
            parts.append(self.parse_single_query())
        return ast.Query(parts=tuple(parts), union_all=tuple(union_all))

    def parse_single_query(self) -> ast.SingleQuery:
        clauses: List[ast.Clause] = []
        while True:
            token = self._peek()
            if token.is_keyword("MATCH") or token.is_keyword("OPTIONAL"):
                clauses.append(self.parse_match())
            elif token.is_keyword("UNWIND"):
                clauses.append(self.parse_unwind())
            elif token.is_keyword("WITH"):
                clauses.append(self.parse_with())
            elif token.is_keyword("CREATE"):
                clauses.append(self.parse_create())
            elif token.is_keyword("MERGE"):
                clauses.append(self.parse_merge())
            elif token.is_keyword("SET"):
                clauses.append(self.parse_set())
            elif token.is_keyword("DELETE") or token.is_keyword("DETACH"):
                clauses.append(self.parse_delete())
            elif token.is_keyword("REMOVE"):
                clauses.append(self.parse_remove())
            elif token.is_keyword("RETURN"):
                clauses.append(self.parse_return())
                break
            else:
                break
        if not clauses:
            raise self._error("expected a query clause")
        # A read query must end in RETURN; update queries may omit it.
        if not isinstance(clauses[-1], ast.Return) and not any(
            isinstance(clause, ast.WRITE_CLAUSES) for clause in clauses
        ):
            raise self._error("a read query must end with RETURN")
        return ast.SingleQuery(clauses=tuple(clauses))

    # -- write clauses -----------------------------------------------------------

    def parse_create(self) -> ast.Create:
        self._expect_keyword("CREATE")
        return ast.Create(pattern=self.parse_pattern())

    def parse_merge(self) -> ast.Merge:
        self._expect_keyword("MERGE")
        path = self.parse_path_pattern()
        on_create: List[object] = []
        on_match: List[object] = []
        while self._peek().is_keyword("ON"):
            self._advance()
            token = self._peek()
            if token.is_keyword("CREATE"):
                self._advance()
                self._expect_keyword("SET")
                on_create.extend(self._parse_set_items())
            elif token.is_keyword("MATCH"):
                self._advance()
                self._expect_keyword("SET")
                on_match.extend(self._parse_set_items())
            else:
                raise self._error("expected CREATE or MATCH after ON")
        return ast.Merge(
            path=path, on_create=tuple(on_create), on_match=tuple(on_match)
        )

    def parse_set(self) -> ast.SetClause:
        self._expect_keyword("SET")
        return ast.SetClause(items=tuple(self._parse_set_items()))

    def _parse_set_items(self) -> List[object]:
        items: List[object] = [self._parse_set_item()]
        while self._match(TokenKind.COMMA):
            items.append(self._parse_set_item())
        return items

    def _parse_set_item(self) -> object:
        # variable:Label / variable = map / variable += map / expr.key = v
        if self._peek().kind is TokenKind.IDENT:
            if self._peek(1).kind is TokenKind.COLON:
                variable = self._advance().value
                labels = []
                while self._match(TokenKind.COLON):
                    labels.append(self._name_token("as a label"))
                return ast.SetLabels(variable=variable, labels=tuple(labels))
            if self._peek(1).kind is TokenKind.EQ:
                variable = self._advance().value
                self._advance()
                return ast.SetFromMap(
                    variable=variable,
                    source=self.parse_expression(),
                    additive=False,
                )
            if (
                self._peek(1).kind is TokenKind.PLUS
                and self._peek(2).kind is TokenKind.EQ
            ):
                variable = self._advance().value
                self._advance()
                self._advance()
                return ast.SetFromMap(
                    variable=variable,
                    source=self.parse_expression(),
                    additive=True,
                )
        target = self._parse_postfix()
        if not isinstance(target, ast.PropertyAccess):
            raise self._error("SET expects 'entity.property = value'")
        self._expect(TokenKind.EQ, "in SET item")
        return ast.SetProperty(
            target=target.subject, key=target.key, value=self.parse_expression()
        )

    def parse_delete(self) -> ast.Delete:
        detach = self._match_keyword("DETACH") is not None
        self._expect_keyword("DELETE")
        targets = [self.parse_expression()]
        while self._match(TokenKind.COMMA):
            targets.append(self.parse_expression())
        return ast.Delete(targets=tuple(targets), detach=detach)

    def parse_remove(self) -> ast.Remove:
        self._expect_keyword("REMOVE")
        items: List[object] = [self._parse_remove_item()]
        while self._match(TokenKind.COMMA):
            items.append(self._parse_remove_item())
        return ast.Remove(items=tuple(items))

    def _parse_remove_item(self) -> object:
        if (
            self._peek().kind is TokenKind.IDENT
            and self._peek(1).kind is TokenKind.COLON
        ):
            variable = self._advance().value
            labels = []
            while self._match(TokenKind.COLON):
                labels.append(self._name_token("as a label"))
            return ast.RemoveLabels(variable=variable, labels=tuple(labels))
        target = self._parse_postfix()
        if not isinstance(target, ast.PropertyAccess):
            raise self._error("REMOVE expects 'entity.property' or 'n:Label'")
        return ast.RemoveProperty(target=target.subject, key=target.key)

    # -- clauses ------------------------------------------------------------------

    def parse_match(self) -> ast.Match:
        optional = self._match_keyword("OPTIONAL") is not None
        self._expect_keyword("MATCH")
        pattern = self.parse_pattern()
        where = self._parse_optional_where()
        return ast.Match(pattern=pattern, optional=optional, where=where)

    def _parse_optional_where(self) -> Optional[ast.Expression]:
        if self._match_keyword("WHERE"):
            return self.parse_expression()
        return None

    def parse_unwind(self) -> ast.Unwind:
        self._expect_keyword("UNWIND")
        source = self.parse_expression()
        self._expect_keyword("AS")
        alias = self._name_token("after AS")
        return ast.Unwind(source=source, alias=alias)

    def _parse_projection_body(
        self,
    ) -> Tuple[Tuple[ast.ProjectionItem, ...], bool, bool,
               Tuple[ast.OrderItem, ...], Optional[ast.Expression],
               Optional[ast.Expression]]:
        distinct = self._match_keyword("DISTINCT") is not None
        star = False
        items: List[ast.ProjectionItem] = []
        if self._check(TokenKind.STAR):
            self._advance()
            star = True
            while self._match(TokenKind.COMMA):
                items.append(self._parse_projection_item())
        else:
            items.append(self._parse_projection_item())
            while self._match(TokenKind.COMMA):
                items.append(self._parse_projection_item())
        order_by: List[ast.OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._match(TokenKind.COMMA):
                order_by.append(self._parse_order_item())
        skip = self.parse_expression() if self._match_keyword("SKIP") else None
        limit = self.parse_expression() if self._match_keyword("LIMIT") else None
        return tuple(items), distinct, star, tuple(order_by), skip, limit

    def _parse_projection_item(self) -> ast.ProjectionItem:
        expression = self.parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._name_token("after AS")
        return ast.ProjectionItem(expression=expression, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        descending = False
        if self._match_keyword("DESC", "DESCENDING"):
            descending = True
        else:
            self._match_keyword("ASC", "ASCENDING")
        return ast.OrderItem(expression=expression, descending=descending)

    def parse_with(self) -> ast.With:
        self._expect_keyword("WITH")
        items, distinct, star, order_by, skip, limit = self._parse_projection_body()
        where = self._parse_optional_where()
        return ast.With(
            items=items,
            distinct=distinct,
            star=star,
            order_by=order_by,
            skip=skip,
            limit=limit,
            where=where,
        )

    def parse_return(self) -> ast.Return:
        self._expect_keyword("RETURN")
        items, distinct, star, order_by, skip, limit = self._parse_projection_body()
        return ast.Return(
            items=items,
            distinct=distinct,
            star=star,
            order_by=order_by,
            skip=skip,
            limit=limit,
        )

    # -- patterns -------------------------------------------------------------------

    def parse_pattern(self) -> ast.Pattern:
        paths = [self.parse_path_pattern()]
        while self._match(TokenKind.COMMA):
            paths.append(self.parse_path_pattern())
        return ast.Pattern(paths=tuple(paths))

    def parse_path_pattern(self) -> ast.PathPattern:
        variable: Optional[str] = None
        if (
            self._peek().kind is TokenKind.IDENT
            and self._peek(1).kind is TokenKind.EQ
            and self._peek(0).value.lower() not in _SHORTEST_FUNCTIONS
        ):
            variable = self._advance().value
            self._advance()  # '='
        shortest: Optional[str] = None
        if (
            self._peek().kind is TokenKind.IDENT
            and self._peek().value.lower() in _SHORTEST_FUNCTIONS
            and self._peek(1).kind is TokenKind.LPAREN
        ):
            shortest = _SHORTEST_FUNCTIONS[self._advance().value.lower()]
            self._expect(TokenKind.LPAREN, "after shortestPath")
            inner = self._parse_anonymous_path()
            self._expect(TokenKind.RPAREN, "closing shortestPath")
            return ast.PathPattern(
                nodes=inner.nodes,
                relationships=inner.relationships,
                variable=variable,
                shortest=shortest,
            )
        inner = self._parse_anonymous_path()
        return ast.PathPattern(
            nodes=inner.nodes,
            relationships=inner.relationships,
            variable=variable,
            shortest=None,
        )

    def _parse_anonymous_path(self) -> ast.PathPattern:
        nodes = [self.parse_node_pattern()]
        relationships: List[ast.RelationshipPattern] = []
        while self._check(TokenKind.MINUS) or self._check(TokenKind.LT):
            relationships.append(self.parse_relationship_pattern())
            nodes.append(self.parse_node_pattern())
        return ast.PathPattern(nodes=tuple(nodes), relationships=tuple(relationships))

    def parse_node_pattern(self) -> ast.NodePattern:
        self._expect(TokenKind.LPAREN, "to start a node pattern")
        variable = None
        if self._check(TokenKind.IDENT):
            variable = self._advance().value
        labels: List[str] = []
        while self._match(TokenKind.COLON):
            labels.append(self._name_token("as a node label"))
        properties = ()
        if self._check(TokenKind.LBRACE):
            properties = self._parse_property_map()
        self._expect(TokenKind.RPAREN, "to close the node pattern")
        return ast.NodePattern(
            variable=variable, labels=tuple(labels), properties=properties
        )

    def parse_relationship_pattern(self) -> ast.RelationshipPattern:
        left_arrow = False
        if self._match(TokenKind.LT):
            left_arrow = True
        self._expect(TokenKind.MINUS, "in a relationship pattern")
        variable = None
        types: Tuple[str, ...] = ()
        var_length = None
        properties: Tuple[Tuple[str, ast.Expression], ...] = ()
        if self._match(TokenKind.LBRACKET):
            if self._check(TokenKind.IDENT):
                variable = self._advance().value
            if self._match(TokenKind.COLON):
                type_names = [self._name_token("as a relationship type")]
                while self._match(TokenKind.PIPE):
                    self._match(TokenKind.COLON)  # tolerate the |:T variant
                    type_names.append(self._name_token("as a relationship type"))
                types = tuple(type_names)
            if self._match(TokenKind.STAR):
                var_length = self._parse_var_length_bounds()
            if self._check(TokenKind.LBRACE):
                properties = self._parse_property_map()
            self._expect(TokenKind.RBRACKET, "to close the relationship detail")
        self._expect(TokenKind.MINUS, "in a relationship pattern")
        right_arrow = self._match(TokenKind.GT) is not None
        if left_arrow and right_arrow:
            raise self._error("a relationship pattern cannot point both ways")
        if left_arrow:
            direction = ast.Direction.IN
        elif right_arrow:
            direction = ast.Direction.OUT
        else:
            direction = ast.Direction.BOTH
        return ast.RelationshipPattern(
            variable=variable,
            types=types,
            direction=direction,
            var_length=var_length,
            properties=properties,
        )

    def _parse_var_length_bounds(
        self,
    ) -> Tuple[Optional[int], Optional[int]]:
        low: Optional[int] = None
        high: Optional[int] = None
        if self._check(TokenKind.INTEGER):
            low = self._advance().value
            if self._match(TokenKind.DOTDOT):
                if self._check(TokenKind.INTEGER):
                    high = self._advance().value
            else:
                high = low  # '*n' means exactly n
        elif self._match(TokenKind.DOTDOT):
            if self._check(TokenKind.INTEGER):
                high = self._advance().value
        return (low, high)

    def _parse_property_map(self) -> Tuple[Tuple[str, ast.Expression], ...]:
        self._expect(TokenKind.LBRACE, "to start a property map")
        entries: List[Tuple[str, ast.Expression]] = []
        if not self._check(TokenKind.RBRACE):
            while True:
                key = self._parse_map_key()
                self._expect(TokenKind.COLON, "after map key")
                entries.append((key, self.parse_expression()))
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RBRACE, "to close the property map")
        return tuple(entries)

    def _parse_map_key(self) -> str:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._advance()
            return token.value
        return self._name_token("as a map key")

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_xor()
        while self._match_keyword("OR"):
            left = ast.Or(left=left, right=self._parse_xor())
        return left

    def _parse_xor(self) -> ast.Expression:
        left = self._parse_and()
        while self._match_keyword("XOR"):
            left = ast.Xor(left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = ast.And(left=left, right=self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            return ast.Not(operand=self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_predicated()
        chain: List[Tuple[str, ast.Expression]] = []
        while self._peek().kind in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self._advance().kind]
            chain.append((op, self._parse_predicated()))
        if chain:
            return ast.Comparison(first=left, rest=tuple(chain))
        return left

    def _parse_predicated(self) -> ast.Expression:
        """Additive expression followed by postfix predicates
        (IS NULL / IN / STARTS WITH / ENDS WITH / CONTAINS / =~)."""
        expression = self._parse_additive()
        while True:
            token = self._peek()
            if token.is_keyword("IS"):
                self._advance()
                negated = self._match_keyword("NOT") is not None
                self._expect_keyword("NULL")
                expression = ast.IsNull(operand=expression, negated=negated)
            elif token.is_keyword("IN"):
                self._advance()
                expression = ast.InList(
                    item=expression, container=self._parse_additive()
                )
            elif token.is_keyword("STARTS"):
                self._advance()
                self._expect_keyword("WITH")
                expression = ast.StringPredicate(
                    kind="STARTS WITH", left=expression, right=self._parse_additive()
                )
            elif token.is_keyword("ENDS"):
                self._advance()
                self._expect_keyword("WITH")
                expression = ast.StringPredicate(
                    kind="ENDS WITH", left=expression, right=self._parse_additive()
                )
            elif token.is_keyword("CONTAINS"):
                self._advance()
                expression = ast.StringPredicate(
                    kind="CONTAINS", left=expression, right=self._parse_additive()
                )
            elif token.kind is TokenKind.REGEX_MATCH:
                self._advance()
                expression = ast.StringPredicate(
                    kind="=~", left=expression, right=self._parse_additive()
                )
            else:
                return expression

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            if self._match(TokenKind.PLUS):
                left = ast.BinaryOp(op="+", left=left,
                                    right=self._parse_multiplicative())
            elif self._match(TokenKind.MINUS):
                left = ast.BinaryOp(op="-", left=left,
                                    right=self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_power()
        while True:
            if self._match(TokenKind.STAR):
                left = ast.BinaryOp(op="*", left=left, right=self._parse_power())
            elif self._match(TokenKind.SLASH):
                left = ast.BinaryOp(op="/", left=left, right=self._parse_power())
            elif self._match(TokenKind.PERCENT):
                left = ast.BinaryOp(op="%", left=left, right=self._parse_power())
            else:
                return left

    def _parse_power(self) -> ast.Expression:
        left = self._parse_unary()
        if self._match(TokenKind.CARET):
            # right-associative
            return ast.BinaryOp(op="^", left=left, right=self._parse_power())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._match(TokenKind.MINUS):
            return ast.UnaryOp(op="-", operand=self._parse_unary())
        if self._match(TokenKind.PLUS):
            return ast.UnaryOp(op="+", operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_atom()
        while True:
            if self._check(TokenKind.DOT):
                self._advance()
                key = self._name_token("as a property key")
                expression = ast.PropertyAccess(subject=expression, key=key)
            elif self._check(TokenKind.LBRACKET):
                self._advance()
                lower: Optional[ast.Expression] = None
                upper: Optional[ast.Expression] = None
                if self._match(TokenKind.DOTDOT):
                    if not self._check(TokenKind.RBRACKET):
                        upper = self.parse_expression()
                    self._expect(TokenKind.RBRACKET, "to close the slice")
                    expression = ast.Slice(subject=expression, lower=None, upper=upper)
                    continue
                lower = self.parse_expression()
                if self._match(TokenKind.DOTDOT):
                    if not self._check(TokenKind.RBRACKET):
                        upper = self.parse_expression()
                    self._expect(TokenKind.RBRACKET, "to close the slice")
                    expression = ast.Slice(subject=expression, lower=lower, upper=upper)
                else:
                    self._expect(TokenKind.RBRACKET, "to close the index")
                    expression = ast.Index(subject=expression, index=lower)
            else:
                return expression

    def _parse_atom(self) -> ast.Expression:
        token = self._peek()

        if token.kind is TokenKind.INTEGER or token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.Literal(value=token.value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(value=True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(value=False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(value=None)
        if token.kind is TokenKind.PARAMETER:
            self._advance()
            return ast.Parameter(name=token.value)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword(*_QUANTIFIERS):
            return self._parse_quantifier()
        if token.is_keyword("EXISTS"):
            return self._parse_exists()
        if token.kind is TokenKind.LBRACKET:
            return self._parse_list_atom()
        if token.kind is TokenKind.LBRACE:
            entries = self._parse_property_map()
            return ast.MapLiteral(entries=entries)
        if token.kind is TokenKind.LPAREN:
            return self._parse_paren_or_pattern()
        if token.kind is TokenKind.IDENT:
            if self._peek(1).kind is TokenKind.LPAREN:
                return self._parse_function_or_pattern()
            self._advance()
            return ast.Variable(name=token.value)
        raise self._error(f"unexpected token {token.text or token.kind.value!r}")

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        operand = None
        if not self._peek().is_keyword("WHEN"):
            operand = self.parse_expression()
        alternatives: List[Tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            when = self.parse_expression()
            self._expect_keyword("THEN")
            then = self.parse_expression()
            alternatives.append((when, then))
        if not alternatives:
            raise self._error("CASE requires at least one WHEN")
        default = None
        if self._match_keyword("ELSE"):
            default = self.parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpression(
            operand=operand, alternatives=tuple(alternatives), default=default
        )

    def _parse_quantifier(self) -> ast.Expression:
        kind = self._advance().text  # ALL/ANY/NONE/SINGLE
        self._expect(TokenKind.LPAREN, f"after {kind}")
        variable = self._name_token(f"as the {kind} variable")
        self._expect_keyword("IN")
        source = self.parse_expression()
        self._expect_keyword("WHERE")
        predicate = self.parse_expression()
        self._expect(TokenKind.RPAREN, f"to close {kind}(...)")
        return ast.Quantifier(
            kind=kind, variable=variable, source=source, predicate=predicate
        )

    def _parse_exists(self) -> ast.Expression:
        self._expect_keyword("EXISTS")
        self._expect(TokenKind.LPAREN, "after EXISTS")
        saved = self.pos
        try:
            pattern = self._parse_anonymous_path()
            if not pattern.relationships:
                raise self._error("not a pattern")
            self._expect(TokenKind.RPAREN, "to close EXISTS(...)")
            return ast.PatternPredicate(
                pattern=ast.PathPattern(
                    nodes=pattern.nodes, relationships=pattern.relationships
                )
            )
        except CypherSyntaxError:
            self.pos = saved
        expression = self.parse_expression()
        self._expect(TokenKind.RPAREN, "to close EXISTS(...)")
        return ast.FunctionCall(name="exists", args=(expression,))

    def _parse_list_atom(self) -> ast.Expression:
        """A list literal or a list comprehension."""
        self._expect(TokenKind.LBRACKET, "to start a list")
        # Lookahead for `ident IN`: a comprehension.
        if (
            self._peek().kind is TokenKind.IDENT
            and self._peek(1).is_keyword("IN")
        ):
            variable = self._advance().value
            self._advance()  # IN
            source = self.parse_expression()
            predicate = None
            projection = None
            if self._match_keyword("WHERE"):
                predicate = self.parse_expression()
            if self._match(TokenKind.PIPE):
                projection = self.parse_expression()
            self._expect(TokenKind.RBRACKET, "to close the list comprehension")
            return ast.ListComprehension(
                variable=variable,
                source=source,
                predicate=predicate,
                projection=projection,
            )
        items: List[ast.Expression] = []
        if not self._check(TokenKind.RBRACKET):
            items.append(self.parse_expression())
            while self._match(TokenKind.COMMA):
                items.append(self.parse_expression())
        self._expect(TokenKind.RBRACKET, "to close the list")
        return ast.ListLiteral(items=tuple(items))

    def _parse_function_or_pattern(self) -> ast.Expression:
        """An identifier followed by '(' — function call, count(*), or a
        pattern predicate starting with a bare node like (a)-[...]->(b)."""
        name_token = self._advance()
        name = name_token.value
        self._expect(TokenKind.LPAREN, "after function name")
        if name.lower() == "count" and self._check(TokenKind.STAR):
            self._advance()
            self._expect(TokenKind.RPAREN, "to close count(*)")
            return ast.CountStar()
        distinct = self._match_keyword("DISTINCT") is not None
        args: List[ast.Expression] = []
        if not self._check(TokenKind.RPAREN):
            args.append(self.parse_expression())
            while self._match(TokenKind.COMMA):
                args.append(self.parse_expression())
        self._expect(TokenKind.RPAREN, "to close the argument list")
        return ast.FunctionCall(name=name.lower(), args=tuple(args),
                                distinct=distinct)

    def _parse_paren_or_pattern(self) -> ast.Expression:
        """Disambiguate '(expr)' from a pattern predicate '(a)-[..]-(b)'."""
        saved = self.pos
        try:
            pattern = self._parse_anonymous_path()
            if pattern.relationships:
                return ast.PatternPredicate(pattern=pattern)
        except CypherSyntaxError:
            pass
        self.pos = saved
        self._expect(TokenKind.LPAREN, "to start a parenthesized expression")
        expression = self.parse_expression()
        self._expect(TokenKind.RPAREN, "to close the parenthesized expression")
        return expression


def parse_cypher(text: str) -> ast.Query:
    """Parse a core-Cypher query string into an AST."""
    return CypherParser(text).parse_query()


def parse_cypher_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (testing and tooling helper)."""
    parser = CypherParser(text)
    expression = parser.parse_expression()
    if not parser._check(TokenKind.EOF):
        raise parser._error("unexpected trailing input")
    return expression
