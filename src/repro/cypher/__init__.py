"""Core-Cypher engine: lexer, parser, matcher, evaluator (Figure 3)."""

from repro.cypher.evaluator import QueryEvaluator, run_cypher
from repro.cypher.parser import CypherParser, parse_cypher, parse_cypher_expression
from repro.cypher.updating import UpdatingQueryEvaluator, run_update

__all__ = [
    "CypherParser",
    "QueryEvaluator",
    "UpdatingQueryEvaluator",
    "parse_cypher",
    "parse_cypher_expression",
    "run_cypher",
    "run_update",
]
