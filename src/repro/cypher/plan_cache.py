"""Compile-once plan caching keyed by (query text, statistics band).

A physical plan bakes in join order, orientation, and seek choices made
from cheap cardinality statistics.  Those choices stay good while the
statistics stay in the same *band* — we quantize every count to its bit
length (0, 1, 2, 3–4, 5–8, …), so a cached plan survives ordinary
window-to-window churn and is recompiled only when a referenced count
crosses a power-of-two boundary (the classic log-scale invalidation
band: cost ratios inside one band are below 2x, within the noise of the
heuristic cost model anyway).

The band signature covers exactly what compilation reads: per MATCH
window, the graph order/size bands plus the bands of every label and
relationship type the query's patterns mention.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.cypher import ast
from repro.cypher.physical import PhysicalPlan, compile_query

__all__ = ["PlanCache", "stats_band", "band_signature"]


def stats_band(count: int) -> int:
    """Log-scale quantization: counts in [2^(b-1), 2^b) share band ``b``."""
    return int(count).bit_length()


def _pattern_names(pattern: ast.Pattern):
    """(labels, relationship types) a pattern's cost estimate reads."""
    labels = set()
    types = set()
    for path in pattern.paths:
        for node in path.nodes:
            labels.update(node.labels)
        for rel in path.relationships:
            types.update(rel.types)
    return labels, types


def band_signature(
    query,
    stats_for: Callable[[str, int], Any],
    quantize: Callable[[int], int] = stats_band,
) -> tuple:
    """The invalidation key: per-window quantized statistics.

    ``quantize`` defaults to :func:`stats_band`; passing ``int`` (the
    identity on counts) turns the cache into an exact-statistics cache —
    useful in tests that want plan recompilation on any drift.
    """
    from repro.seraph.ast import SeraphMatch

    entries = []
    for clause in query.body:
        if not isinstance(clause, SeraphMatch):
            continue
        window_key = (clause.stream_name, clause.within)
        stats = stats_for(*window_key)
        labels, types = _pattern_names(clause.match.pattern)
        entries.append(
            (
                window_key,
                quantize(stats.order),
                quantize(stats.size),
                tuple(
                    (label, quantize(stats.label_count(label)))
                    for label in sorted(labels)
                ),
                tuple(
                    (rel_type, quantize(stats.rel_type_count(rel_type)))
                    for rel_type in sorted(types)
                ),
            )
        )
    return tuple(entries)


class PlanCache:
    """Per-registry cache of compiled plans with hit/invalidation stats."""

    def __init__(self, quantize: Callable[[int], int] = stats_band):
        self._quantize = quantize
        self._plans: Dict[str, PhysicalPlan] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def plan_for(
        self, query, stats_for: Callable[[str, int], Any]
    ) -> PhysicalPlan:
        """The cached plan for ``query``, recompiling on band drift.

        Raises :class:`~repro.errors.PhysicalPlanError` when the query
        cannot be lowered (never cached; callers remember the failure).
        """
        text = query.render()
        band = band_signature(query, stats_for, self._quantize)
        cached = self._plans.get(text)
        if cached is not None and cached.band == band:
            self.hits += 1
            return cached
        if cached is not None:
            self.invalidations += 1
        self.misses += 1
        plan = compile_query(query, stats_for, band=band)
        self._plans[text] = plan
        return plan

    def evict(self, query) -> None:
        """Drop the plan cached for ``query`` (on deregistration)."""
        self._plans.pop(query.render(), None)

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
