"""Graph-to-graph transformations (the paper's future-work item iv).

A :class:`GraphTemplate` maps each emitted record to nodes and
relationships of an *output* property graph, so a continuous query's
emissions become a property graph stream again — composable with further
Seraph queries (GQL-style graph-to-graph pipelines).

Example::

    template = GraphTemplate(
        nodes=(
            NodeSpec(key="user_id", labels=("Suspect",),
                     properties=("user_id",)),
            NodeSpec(key="station_id", labels=("Station",),
                     properties=("station_id",), id_offset=10_000),
        ),
        relationships=(
            RelationshipSpec(src_key="user_id", trg_key="station_id",
                             rel_type="FLAGGED_AT",
                             properties=("val_time",),
                             trg_offset=10_000),
        ),
    )
    sink = ConstructingSink(template)
    engine.register(QUERY, sink=sink)
    ...
    downstream.run_stream(sink.elements)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SeraphSemanticError
from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph
from repro.graph.values import NULL
from repro.seraph.sinks import Emission, Sink
from repro.stream.stream import StreamElement


@dataclass(frozen=True)
class NodeSpec:
    """One output node per distinct value of ``key`` in a record.

    The node id is ``int(record[key]) + id_offset`` — offsets keep node
    id spaces of different specs disjoint.  ``properties`` lists record
    fields copied onto the node.
    """

    key: str
    labels: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    id_offset: int = 0


@dataclass(frozen=True)
class RelationshipSpec:
    """One output relationship per record, between two spec'd nodes."""

    src_key: str
    trg_key: str
    rel_type: str
    properties: Tuple[str, ...] = ()
    src_offset: int = 0
    trg_offset: int = 0


@dataclass(frozen=True)
class GraphTemplate:
    """How to turn one emission's records into an event graph."""

    nodes: Tuple[NodeSpec, ...]
    relationships: Tuple[RelationshipSpec, ...] = ()

    def build(self, emission: Emission, rel_ids: "itertools.count") \
            -> PropertyGraph:
        builder = GraphBuilder()
        for record in emission.table:
            node_ids: Dict[Tuple[str, int], int] = {}
            for spec in self.nodes:
                value = record.get(spec.key)
                if value is NULL:
                    continue
                node_id = int(value) + spec.id_offset
                builder.add_node(
                    labels=spec.labels,
                    properties={
                        name: record.get(name) for name in spec.properties
                        if record.get(name) is not NULL
                    },
                    node_id=node_id,
                )
                node_ids[(spec.key, spec.id_offset)] = node_id
            for spec in self.relationships:
                src = node_ids.get((spec.src_key, spec.src_offset))
                trg = node_ids.get((spec.trg_key, spec.trg_offset))
                if src is None or trg is None:
                    raise SeraphSemanticError(
                        "relationship spec references node keys "
                        f"({spec.src_key!r}, {spec.trg_key!r}) that no "
                        "node spec produced for this record"
                    )
                builder.add_relationship(
                    src, spec.rel_type, trg,
                    properties={
                        name: record.get(name) for name in spec.properties
                        if record.get(name) is not NULL
                    },
                    rel_id=next(rel_ids),
                )
        return builder.build()


class ConstructingSink(Sink):
    """Sink that materializes emissions as an output graph stream.

    Each non-empty emission becomes one :class:`StreamElement` whose
    arrival instant is the evaluation instant — feeding it into another
    engine closes the graph-to-graph loop.
    """

    def __init__(self, template: GraphTemplate, include_empty: bool = False):
        self.template = template
        self.include_empty = include_empty
        self.elements: List[StreamElement] = []
        self._rel_ids = itertools.count(1)

    def receive(self, emission: Emission) -> None:
        if emission.is_empty() and not self.include_empty:
            return
        graph = self.template.build(emission, self._rel_ids)
        self.elements.append(
            StreamElement(graph=graph, instant=emission.instant)
        )
