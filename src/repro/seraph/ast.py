"""Seraph AST (Figure 6).

A Seraph query wraps a Cypher clause body with the continuous-evaluation
operators: ``REGISTER QUERY <name> STARTING AT <ω₀> { body }`` where each
``MATCH`` carries a ``WITHIN`` window width, and the body terminates with
either ``EMIT … <policy> EVERY <β>`` (a continuous stream of
time-annotated tables) or ``RETURN …`` (a single one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cypher import ast as cypher_ast
from repro.graph.temporal import TimeInstant, format_datetime, format_duration
from repro.stream.report import ReportPolicy


#: Name of the implicit stream used when a MATCH names none.
DEFAULT_STREAM = "default"


@dataclass(frozen=True)
class SeraphMatch:
    """A Cypher MATCH with its window width α (``WITHIN``), in seconds.

    ``stream`` names the input stream the window reads (the paper's
    future-work item *i*, "query multiple streams simultaneously" —
    extension syntax ``FROM STREAM <name>``); ``None`` means the default
    stream.
    """

    match: cypher_ast.Match
    within: int
    stream: Optional[str] = None

    @property
    def stream_name(self) -> str:
        return self.stream if self.stream is not None else DEFAULT_STREAM

    def render(self) -> str:
        out = "OPTIONAL MATCH " if self.match.optional else "MATCH "
        out += self.match.pattern.render()
        if self.stream is not None:
            out += f" FROM STREAM {self.stream}"
        out += f" WITHIN {format_duration(self.within)}"
        if self.match.where is not None:
            out += f" WHERE {self.match.where.render()}"
        return out


@dataclass(frozen=True)
class Emit:
    """``EMIT items <policy> EVERY β [INTO stream]`` — the continuous
    terminal clause.  ``into`` names the derived stream the emitted rows
    are materialized into, making the query a producer other registered
    queries can consume with ``FROM STREAM`` (docs/DATAFLOW.md)."""

    items: Tuple[cypher_ast.ProjectionItem, ...]
    star: bool = False
    policy: ReportPolicy = ReportPolicy.SNAPSHOT
    every: int = 0  # slide β in seconds
    into: Optional[str] = None

    def render(self) -> str:
        parts = (["*"] if self.star else []) + [item.render() for item in self.items]
        out = "EMIT " + ", ".join(parts)
        if self.policy is not ReportPolicy.SNAPSHOT:
            out += f" {self.policy.value}"
        else:
            out += " SNAPSHOT"
        out += f" EVERY {format_duration(self.every)}"
        if self.into is not None:
            out += f" INTO {self.into}"
        return out


@dataclass(frozen=True)
class SeraphQuery:
    """A registered continuous query.

    ``body`` holds the clause sequence; MATCH clauses appear as
    :class:`SeraphMatch`, all other clauses are plain Cypher AST nodes.
    Exactly one of ``emit``/``final_return`` is set: ``emit`` for
    continuous emission, ``final_return`` for the single-result variant.
    """

    name: str
    starting_at: TimeInstant
    body: Tuple[object, ...]  # SeraphMatch | cypher_ast.Clause
    emit: Optional[Emit] = None
    final_return: Optional[cypher_ast.Return] = None

    def __post_init__(self):
        if (self.emit is None) == (self.final_return is None):
            raise ValueError("a Seraph query needs exactly one of EMIT or RETURN")

    @property
    def is_continuous(self) -> bool:
        return self.emit is not None

    @property
    def max_within(self) -> int:
        """The widest WITHIN of the body — the reported window width."""
        widths = [
            clause.within for clause in self.body if isinstance(clause, SeraphMatch)
        ]
        if not widths:
            return self.emit.every if self.emit else 0
        return max(widths)

    @property
    def slide(self) -> int:
        """β: the EVERY period (0 for RETURN-terminal queries)."""
        return self.emit.every if self.emit else 0

    @property
    def emits_into(self) -> Optional[str]:
        """The derived stream this query produces (``EMIT ... INTO``)."""
        return self.emit.into if self.emit is not None else None

    def stream_names(self) -> Tuple[str, ...]:
        """The input streams this query reads, in first-use order."""
        names = []
        for clause in self.body:
            if isinstance(clause, SeraphMatch):
                name = clause.stream_name
                if name not in names:
                    names.append(name)
        return tuple(names) or (DEFAULT_STREAM,)

    def window_keys(self) -> Tuple[Tuple[str, int], ...]:
        """Distinct (stream, WITHIN width) pairs of the body."""
        keys = []
        for clause in self.body:
            if isinstance(clause, SeraphMatch):
                key = (clause.stream_name, clause.within)
                if key not in keys:
                    keys.append(key)
        if not keys:
            keys.append((DEFAULT_STREAM, self.max_within or 1))
        return tuple(keys)

    def references_window_bounds(self) -> bool:
        """Whether any expression mentions win_start/win_end.

        Used by the engine's unchanged-window re-execution avoidance: a
        query whose text never names the reserved bounds produces the same
        table for the same window *content*, regardless of the bounds.
        The check is conservative (rendered-text scan): false positives
        only disable an optimization, never change results.
        """
        import re

        return re.search(r"\bwin_(start|end)\b", self.render()) is not None

    def render(self) -> str:
        lines = [f"REGISTER QUERY {self.name} "
                 f"STARTING AT {format_datetime(self.starting_at)}", "{"]
        for clause in self.body:
            lines.append("  " + clause.render())
        if self.emit is not None:
            lines.append("  " + self.emit.render())
        else:
            lines.append("  " + self.final_return.render())
        lines.append("}")
        return "\n".join(lines)

    @staticmethod
    def lift_cypher(
        name: str,
        starting_at: TimeInstant,
        query: cypher_ast.SingleQuery,
        within: int,
        every: int,
        policy: ReportPolicy = ReportPolicy.SNAPSHOT,
    ) -> "SeraphQuery":
        """Lift a one-time Cypher query into a continuous Seraph query.

        The embedding behind requirement R4: every MATCH gets the given
        WITHIN width and the terminal RETURN becomes EMIT with the given
        report policy and EVERY period.
        """
        body = []
        final = None
        for clause in query.clauses:
            if isinstance(clause, cypher_ast.Return):
                final = clause
            elif isinstance(clause, cypher_ast.Match):
                body.append(SeraphMatch(match=clause, within=within))
            else:
                body.append(clause)
        if final is None:
            raise ValueError("the Cypher query must end in RETURN")
        return SeraphQuery(
            name=name,
            starting_at=starting_at,
            body=tuple(body),
            emit=Emit(
                items=final.items, star=final.star, policy=policy, every=every
            ),
        )

    def cypher_counterpart(self) -> cypher_ast.SingleQuery:
        """The non-streaming Cypher query Q of Definition 5.8.

        Strips WITHIN and replaces EMIT with RETURN — the query that
        snapshot reducibility evaluates over snapshot graphs.
        """
        clauses = []
        for clause in self.body:
            if isinstance(clause, SeraphMatch):
                clauses.append(clause.match)
            else:
                clauses.append(clause)
        if self.final_return is not None:
            clauses.append(self.final_return)
        else:
            clauses.append(
                cypher_ast.Return(
                    items=self.emit.items,
                    star=self.emit.star,
                )
            )
        return cypher_ast.SingleQuery(clauses=tuple(clauses))
