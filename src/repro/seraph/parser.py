"""Parser for the Seraph grammar (Figure 6).

Extends :class:`repro.cypher.parser.CypherParser` with the green-keyword
constructs: ``REGISTER QUERY``, ``STARTING AT``, per-MATCH ``WITHIN``,
``EMIT … ON ENTERING/ON EXITING/SNAPSHOT … EVERY …``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cypher import ast as cypher_ast
from repro.cypher.parser import CypherParser
from repro.cypher.tokens import TokenKind
from repro.errors import SeraphSyntaxError, TemporalError
from repro.graph.temporal import parse_datetime, parse_duration
from repro.seraph.ast import Emit, SeraphMatch, SeraphQuery
from repro.stream.report import ReportPolicy


class SeraphParser(CypherParser):
    """Parses one ``REGISTER QUERY`` statement."""

    def parse_seraph_query(self) -> SeraphQuery:
        self._expect_keyword("REGISTER")
        self._expect_keyword("QUERY")
        name = self._name_token("as the query name")
        self._expect_keyword("STARTING")
        self._expect_keyword("AT")
        starting_at = self._parse_datetime_literal()
        self._expect(TokenKind.LBRACE, "to open the query body")
        body, emit, final_return = self._parse_body()
        self._expect(TokenKind.RBRACE, "to close the query body")
        self._match(TokenKind.SEMICOLON)
        if not self._check(TokenKind.EOF):
            raise self._seraph_error(
                f"unexpected trailing input {self._peek().text!r}"
            )
        return SeraphQuery(
            name=name,
            starting_at=starting_at,
            body=tuple(body),
            emit=emit,
            final_return=final_return,
        )

    # -- pieces -----------------------------------------------------------------

    def _seraph_error(self, message: str) -> SeraphSyntaxError:
        token = self._peek()
        return SeraphSyntaxError(message, token.line, token.column)

    def _parse_datetime_literal(self) -> int:
        token = self._peek()
        if token.kind in (TokenKind.DATETIME, TokenKind.STRING):
            self._advance()
            try:
                return parse_datetime(token.value)
            except TemporalError as exc:
                raise self._seraph_error(str(exc)) from exc
        raise self._seraph_error(
            f"expected an ISO-8601 datetime after STARTING AT, got {token.text!r}"
        )

    def _parse_duration_literal(self, context: str) -> int:
        token = self._peek()
        if token.kind in (TokenKind.IDENT, TokenKind.STRING):
            self._advance()
            try:
                return parse_duration(token.value)
            except TemporalError as exc:
                raise self._seraph_error(str(exc)) from exc
        raise self._seraph_error(
            f"expected an ISO-8601 duration {context}, got {token.text!r}"
        )

    def _parse_body(
        self,
    ) -> Tuple[List[object], Optional[Emit], Optional[cypher_ast.Return]]:
        clauses: List[object] = []
        while True:
            token = self._peek()
            if token.is_keyword("MATCH") or token.is_keyword("OPTIONAL"):
                clauses.append(self._parse_seraph_match())
            elif token.is_keyword("UNWIND"):
                clauses.append(self.parse_unwind())
            elif token.is_keyword("WITH"):
                clauses.append(self.parse_with())
            elif token.is_keyword("WHERE"):
                # Figure 6 allows a standalone WHERE between WITH-less
                # clause boundaries (Listing 5 puts WHERE after WITH on
                # its own line); attach it to the previous clause.
                self._advance()
                predicate = self.parse_expression()
                clauses.append(self._attach_where(clauses, predicate))
            elif token.is_keyword("EMIT"):
                emit = self._parse_emit()
                return clauses, emit, None
            elif token.is_keyword("RETURN"):
                final_return = self.parse_return()
                return clauses, None, final_return
            else:
                raise self._seraph_error(
                    "expected a clause (MATCH/UNWIND/WITH/EMIT/RETURN), got "
                    f"{token.text or token.kind.value!r}"
                )

    def _attach_where(
        self, clauses: List[object], predicate: cypher_ast.Expression
    ) -> object:
        """Fold a standalone WHERE into the preceding clause."""
        if not clauses:
            raise self._seraph_error("WHERE must follow MATCH or WITH")
        previous = clauses.pop()
        if isinstance(previous, SeraphMatch):
            if previous.match.where is not None:
                predicate = cypher_ast.And(left=previous.match.where,
                                           right=predicate)
            return SeraphMatch(
                match=cypher_ast.Match(
                    pattern=previous.match.pattern,
                    optional=previous.match.optional,
                    where=predicate,
                ),
                within=previous.within,
                stream=previous.stream,
            )
        if isinstance(previous, cypher_ast.With):
            if previous.where is not None:
                predicate = cypher_ast.And(left=previous.where, right=predicate)
            return cypher_ast.With(
                items=previous.items,
                distinct=previous.distinct,
                star=previous.star,
                order_by=previous.order_by,
                skip=previous.skip,
                limit=previous.limit,
                where=predicate,
            )
        raise self._seraph_error("WHERE must follow MATCH or WITH")

    def _parse_seraph_match(self) -> SeraphMatch:
        optional = self._match_keyword("OPTIONAL") is not None
        self._expect_keyword("MATCH")
        pattern = self.parse_pattern()
        stream = None
        if self._match_keyword("FROM"):
            self._expect_keyword("STREAM")
            stream = self._name_token("as the stream name")
        if not self._match_keyword("WITHIN"):
            raise self._seraph_error(
                "every Seraph MATCH requires a WITHIN window width (Figure 6)"
            )
        within = self._parse_duration_literal("after WITHIN")
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression()
        return SeraphMatch(
            match=cypher_ast.Match(pattern=pattern, optional=optional, where=where),
            within=within,
            stream=stream,
        )

    def _parse_emit(self) -> Emit:
        self._expect_keyword("EMIT")
        star = False
        items: List[cypher_ast.ProjectionItem] = []
        if self._check(TokenKind.STAR):
            self._advance()
            star = True
            while self._match(TokenKind.COMMA):
                items.append(self._parse_projection_item())
        else:
            items.append(self._parse_projection_item())
            while self._match(TokenKind.COMMA):
                items.append(self._parse_projection_item())
        policy = ReportPolicy.SNAPSHOT
        if self._match_keyword("ON"):
            if self._match_keyword("ENTERING"):
                policy = ReportPolicy.ON_ENTERING
            elif self._match_keyword("EXITING"):
                policy = ReportPolicy.ON_EXITING
            else:
                raise self._seraph_error("expected ENTERING or EXITING after ON")
        else:
            self._match_keyword("SNAPSHOT")
        self._expect_keyword("EVERY")
        every = self._parse_duration_literal("after EVERY")
        into = None
        if self._match_keyword("INTO"):
            into = self._name_token("as the derived stream name after INTO")
        return Emit(items=tuple(items), star=star, policy=policy, every=every,
                    into=into)


def parse_seraph(text: str) -> SeraphQuery:
    """Parse a ``REGISTER QUERY`` statement into a :class:`SeraphQuery`."""
    return SeraphParser(text).parse_seraph_query()
