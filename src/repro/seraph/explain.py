"""EXPLAIN-style introspection for registered Seraph queries.

:func:`explain` produces a human-readable execution outline: windows
(per stream/width), evaluation cadence, report policy, clause pipeline,
and which engine optimizations apply — the kind of plan surface the
paper's Section 6 optimization work would need.

:func:`explain_analyze` appends *observed* per-stage timings to that
outline, read from the engine's metrics registry (the stage histograms
:meth:`repro.obs.Observability.record_stage` fills during evaluation),
plus the compiled physical operator tree with the cumulative rows each
operator produced (:mod:`repro.cypher.physical`).
"""

from __future__ import annotations

from typing import List, Union

from repro.cypher import ast as cypher_ast
from repro.errors import EngineError, PhysicalPlanError
from repro.graph.temporal import format_datetime, format_duration
from repro.seraph.ast import SeraphMatch, SeraphQuery
from repro.seraph.parser import parse_seraph


def _indent(text: str, prefix: str) -> List[str]:
    return [prefix + line for line in text.splitlines()]


def explain(query: Union[str, SeraphQuery], graph=None) -> str:
    """Render an execution outline for a Seraph query.

    With ``graph`` (a :class:`~repro.graph.model.PropertyGraph` or
    :class:`~repro.cypher.planner.GraphStatistics` standing in for every
    window), the outline also shows the physical operator tree the
    compiler produces under those statistics."""
    if isinstance(query, str):
        query = parse_seraph(query)
    lines: List[str] = []
    lines.append(f"ContinuousQuery {query.name}")
    lines.append(f"  starting at : {format_datetime(query.starting_at)}")
    if query.is_continuous:
        lines.append(
            f"  cadence     : every {format_duration(query.slide)} "
            f"(ET = ω0 + i·β)"
        )
        lines.append(f"  report      : {query.emit.policy.value}")
        if query.emits_into is not None:
            lines.append(
                f"  emits into  : stream {query.emits_into!r} "
                "(rows materialize as derived elements)"
            )
    else:
        lines.append("  cadence     : one-shot (RETURN terminal)")
    lines.append("  windows     :")
    for stream_name, width in query.window_keys():
        lines.append(
            f"    - stream {stream_name!r}: width {format_duration(width)}"
        )
    lines.append(
        "  win bounds  : "
        + ("referenced (reuse optimization off)"
           if query.references_window_bounds()
           else "not referenced (unchanged-window reuse applies)")
    )
    from repro.seraph.delta import delta_ineligibility

    reason = delta_ineligibility(query)
    lines.append(
        "  delta eval  : "
        + ("eligible (incremental re-matching applies)"
           if reason is None else f"full re-evaluation ({reason})")
    )
    lines.append("  pipeline    :")
    step = 0
    for clause in query.body:
        step += 1
        if isinstance(clause, SeraphMatch):
            kind = "OptionalMatch" if clause.match.optional else "Match"
            detail = clause.match.pattern.render()
            lines.append(
                f"    {step}. {kind}[{clause.stream_name}/"
                f"{format_duration(clause.within)}] {detail}"
            )
            if clause.match.where is not None:
                step += 1
                lines.append(
                    f"    {step}. Filter {clause.match.where.render()}"
                )
        elif isinstance(clause, cypher_ast.With):
            lines.append(f"    {step}. Project {clause.render()[5:]}")
        elif isinstance(clause, cypher_ast.Unwind):
            lines.append(f"    {step}. Unwind {clause.render()[7:]}")
        else:
            lines.append(f"    {step}. {clause.render()}")
    step += 1
    if query.emit is not None:
        items = ", ".join(item.render() for item in query.emit.items)
        if query.emit.star:
            items = "*" + (", " + items if items else "")
        lines.append(f"    {step}. Emit {items}")
    else:
        lines.append(f"    {step}. {query.final_return.render()}")
    if graph is not None:
        from repro.cypher.physical import compile_query, render_plan

        lines.append("  physical    :")
        try:
            plan = compile_query(query, lambda _stream, _width: graph)
        except PhysicalPlanError as exc:
            lines.append(f"    (interpreted fallback: {exc})")
        else:
            lines.extend(_indent(render_plan(plan), "    "))
    return "\n".join(lines)


def explain_analyze(engine, query_name: str) -> str:
    """EXPLAIN plus observed stage timings (``EXPLAIN ANALYZE``).

    ``engine`` is any layer of the stack (:class:`SeraphEngine`,
    :class:`ParallelEngine`, or a :class:`ResilientEngine` wrapper) that
    ran ``query_name`` with observability enabled; each stage that fired
    at least once gets a ``n/mean/p95/max`` line.  Raises
    :class:`~repro.errors.EngineError` for an unregistered query; an
    engine without observability gets the plain plan plus a hint.
    """
    from repro.obs import STAGES, stage_metric
    from repro.obs.format import render_histogram

    from repro.cypher.physical import render_plan

    inner = engine.engine if hasattr(engine, "dead_letters") \
        and hasattr(engine, "engine") else engine
    if query_name not in inner.query_names:
        raise EngineError(f"query {query_name!r} is not registered")
    registered = inner.registered(query_name)
    lines = [explain(registered.query)]
    plan = registered.physical_plan
    if plan is not None:
        lines.append(
            f"  physical    : ({registered.plan_compiles} compiles, "
            f"band {len(plan.band)} windows)"
        )
        lines.extend(
            _indent(
                render_plan(
                    plan,
                    rows=registered.plan_rows,
                    prunes=registered.plan_prunes or None,
                ),
                "    ",
            )
        )
    elif registered.plan_failed:
        lines.append(
            "  physical    : interpreted fallback "
            "(query not coverable by the physical pipeline)"
        )
    obs = inner.obs
    if not obs.enabled:
        lines.append(
            "  analyze     : observability disabled "
            "(build with EngineConfig(observability=True))"
        )
        return "\n".join(lines)
    lines.append("  analyze     :")
    observed = 0
    for stage in STAGES:
        instrument = obs.registry.get(stage_metric(query_name, stage))
        if instrument is None or instrument.count == 0:
            continue
        observed += 1
        lines.append(
            "    " + render_histogram(stage, instrument.snapshot())
        )
    if not observed:
        lines.append("    (no evaluations observed yet)")
    return "\n".join(lines)


def explain_dataflow(engine) -> str:
    """Render the engine's dataflow DAG in topological (stage) order.

    Each query is shown under its scheduling stage with the streams it
    reads and (for ``EMIT ... INTO`` producers) the derived stream it
    feeds, followed by every producer→consumer edge annotated with the
    elements emitted into and consumed from its stream so far.
    ``engine`` is any layer of the stack; a
    :class:`~repro.runtime.engine.ResilientEngine` wrapper is unwrapped
    like in :func:`explain_analyze`.
    """
    inner = engine.engine if hasattr(engine, "dead_letters") \
        and hasattr(engine, "engine") else engine
    status = inner.dataflow_status()
    lines = ["DataflowDAG"]
    if not status["order"]:
        lines.append("  (no registered queries)")
        return "\n".join(lines)
    streams = status["streams"]
    stages = status["stages"]
    current = None
    for name in status["order"]:
        stage = stages[name]
        if stage != current:
            lines.append(f"  stage {stage}:")
            current = stage
        query = inner.registered(name).query
        reads = ", ".join(query.stream_names())
        produced = query.emits_into if query.is_continuous else None
        suffix = ""
        if produced is not None:
            cursor = streams.get(produced, {}).get("cursor", 0)
            suffix = f" -> INTO {produced} ({cursor} elements)"
        lines.append(f"    - {name} [reads {reads}]{suffix}")
    lines.append("  edges:")
    if not status["edges"]:
        lines.append("    (none — every query reads external streams only)")
    for edge in status["edges"]:
        lines.append(
            f"    {edge['producer']} -[{edge['stream']}]-> "
            f"{edge['consumer']} (emitted {edge['emitted']}, "
            f"consumed {edge['consumed']})"
        )
    return "\n".join(lines)
