"""EXPLAIN-style introspection for registered Seraph queries.

Produces a human-readable execution outline: windows (per stream/width),
evaluation cadence, report policy, clause pipeline, and which engine
optimizations apply — the kind of plan surface the paper's Section 6
optimization work would need.
"""

from __future__ import annotations

from typing import List, Union

from repro.cypher import ast as cypher_ast
from repro.graph.temporal import format_datetime, format_duration
from repro.seraph.ast import SeraphMatch, SeraphQuery
from repro.seraph.parser import parse_seraph


def explain(query: Union[str, SeraphQuery]) -> str:
    """Render an execution outline for a Seraph query."""
    if isinstance(query, str):
        query = parse_seraph(query)
    lines: List[str] = []
    lines.append(f"ContinuousQuery {query.name}")
    lines.append(f"  starting at : {format_datetime(query.starting_at)}")
    if query.is_continuous:
        lines.append(
            f"  cadence     : every {format_duration(query.slide)} "
            f"(ET = ω0 + i·β)"
        )
        lines.append(f"  report      : {query.emit.policy.value}")
    else:
        lines.append("  cadence     : one-shot (RETURN terminal)")
    lines.append("  windows     :")
    for stream_name, width in query.window_keys():
        lines.append(
            f"    - stream {stream_name!r}: width {format_duration(width)}"
        )
    lines.append(
        "  win bounds  : "
        + ("referenced (reuse optimization off)"
           if query.references_window_bounds()
           else "not referenced (unchanged-window reuse applies)")
    )
    from repro.seraph.delta import delta_ineligibility

    reason = delta_ineligibility(query)
    lines.append(
        "  delta eval  : "
        + ("eligible (incremental re-matching applies)"
           if reason is None else f"full re-evaluation ({reason})")
    )
    lines.append("  pipeline    :")
    step = 0
    for clause in query.body:
        step += 1
        if isinstance(clause, SeraphMatch):
            kind = "OptionalMatch" if clause.match.optional else "Match"
            detail = clause.match.pattern.render()
            lines.append(
                f"    {step}. {kind}[{clause.stream_name}/"
                f"{format_duration(clause.within)}] {detail}"
            )
            if clause.match.where is not None:
                step += 1
                lines.append(
                    f"    {step}. Filter {clause.match.where.render()}"
                )
        elif isinstance(clause, cypher_ast.With):
            lines.append(f"    {step}. Project {clause.render()[5:]}")
        elif isinstance(clause, cypher_ast.Unwind):
            lines.append(f"    {step}. Unwind {clause.render()[7:]}")
        else:
            lines.append(f"    {step}. {clause.render()}")
    step += 1
    if query.emit is not None:
        items = ", ".join(item.render() for item in query.emit.items)
        if query.emit.star:
            items = "*" + (", " + items if items else "")
        lines.append(f"    {step}. Emit {items}")
    else:
        lines.append(f"    {step}. {query.final_return.render()}")
    return "\n".join(lines)
