"""The continuous Graph Stream Processing engine (Figure 5, Section 6).

:class:`SeraphEngine` is the runtime the paper sketches: it registers
Seraph queries, ingests one or more property graph streams, fires
evaluations at each query's ET instants, maintains per-window snapshot
graphs incrementally, applies report policies, and delivers
time-annotated tables to sinks.

Beyond the paper's core it implements three of its stated future-work /
optimization items:

* **multiple streams** (future work i) — events are ingested into named
  streams and each ``MATCH`` may read a different one (``FROM STREAM``);
* **static graph integration** (future work iii) — a background graph
  unioned into every snapshot;
* **re-execution avoidance on equal window contents** (Section 6,
  planned optimizations) — when no window's content changed since the
  previous evaluation and the query does not reference the window
  bounds, the previous result is reused instead of re-evaluated;
* **shared window state across concurrent queries** (Section 6,
  "optimizations regarding concurrent queries") — queries whose windows
  agree on (stream, width, ω₀, slide) share one incrementally-maintained
  snapshot instead of each maintaining its own.

Correctness contract: for every query and instant, the engine's emission
bag-equals the denotational :func:`repro.seraph.semantics.continuous_run`
output (tested, including property-based tests over random streams).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.cypher.physical import PhysicalPlan, execute_plan
from repro.cypher.plan_cache import PlanCache
from repro.errors import (
    EngineError,
    PhysicalPlanError,
    QueryRegistryError,
    UnknownStreamError,
)
from repro.obs import NOOP_OBS, Observability
from repro.graph.model import PropertyGraph
from repro.graph.table import Table
from repro.graph.temporal import TimeInstant
from repro.seraph import semantics
from repro.seraph.ast import DEFAULT_STREAM, SeraphMatch, SeraphQuery
from repro.seraph.dataflow import StreamMaterializer
from repro.seraph.delta import (
    QueryDeltaState,
    WindowDelta,
    delta_ineligibility,
    evaluate_delta,
)
from repro.seraph.parser import parse_seraph
from repro.seraph.registry import DataflowGraph
from repro.seraph.sinks import CollectingSink, Emission, Sink
from repro.stream.report import ReportState
from repro.stream.snapshot import SnapshotMaintainer, snapshot_graph
from repro.stream.stream import PropertyGraphStream, StreamElement
from repro.stream.tvt import TimeAnnotatedTable, TimeVaryingTable
from repro.stream.window import ActiveSubstreamPolicy, WindowConfig


class _StreamState:
    """One named input stream: recorded elements + eviction bookkeeping."""

    def __init__(self, name: str):
        self.name = name
        self.stream = PropertyGraphStream()
        self.elements: List[StreamElement] = []
        self.base_seq = 0  # global sequence number of elements[0]

    def append(self, element: StreamElement) -> None:
        self.stream.append(element)
        self.elements.append(element)

    def evict(self, horizon: TimeInstant, min_seq: int) -> None:
        drop = 0
        for index, element in enumerate(self.elements):
            seq = self.base_seq + index
            if element.instant <= horizon and seq < min_seq:
                drop = index + 1
            else:
                break
        if drop:
            del self.elements[:drop]
            self.base_seq += drop
            self.stream.evict_count(drop)

    def evict_all(self) -> None:
        """Drop every retained element (no live query reads this stream)."""
        count = len(self.elements)
        if count:
            self.elements.clear()
            self.base_seq += count
            self.stream.evict_count(count)


class _WindowState:
    """Incrementally maintained window content for one (stream, width)."""

    def __init__(
        self,
        config: WindowConfig,
        policy: ActiveSubstreamPolicy,
        incremental: bool,
        static_graph: Optional[PropertyGraph],
        graph_cls: type = PropertyGraph,
    ):
        self.config = config
        self.policy = policy
        self.incremental = incremental
        self.static_graph = static_graph
        self.graph_cls = graph_cls
        self.maintainer = SnapshotMaintainer(graph_cls=graph_cls)
        if incremental and static_graph is not None:
            # The static graph is a permanent, never-evicted contribution.
            self.maintainer.add(
                StreamElement(graph=static_graph, instant=0)
            )
        self.content: List[StreamElement] = []
        self.content_seqs: List[int] = []
        self.next_seq = 0  # stream sequence number of the next element
        self.last_advanced: Optional[TimeInstant] = None
        self.last_delta = WindowDelta()

    def advance(self, source: _StreamState, instant: TimeInstant) -> WindowDelta:
        """Bring the window content up to the evaluation at ``instant``.

        Returns the content delta (elements that entered/left).  Idempotent
        for repeated calls at the same instant — that is what lets
        concurrent queries with identical window configurations share one
        state (they fire at the same ET instants, in lock-step; each gets
        the same cached delta).
        """
        if self.last_advanced is not None and instant == self.last_advanced:
            return self.last_delta
        self.last_advanced = instant
        window = self.config.active_window(instant, self.policy)
        if self.policy is ActiveSubstreamPolicy.TRAILING:
            keep_after = instant - self.config.width     # keep arrival > this
            add_until = instant                          # add arrival <= this
        else:
            if window is None:
                keep_after = instant
                add_until = instant - 1
            else:
                keep_after = window.start - 1
                add_until = instant
        # Evict from the front (arrivals are non-decreasing).
        evict_count = 0
        for element in self.content:
            if element.instant <= keep_after:
                evict_count += 1
            else:
                break
        removed = tuple(self.content[:evict_count])
        for element in removed:
            if self.incremental:
                self.maintainer.remove(element)
        del self.content[:evict_count]
        del self.content_seqs[:evict_count]
        # Add newly arrived elements.  A state created after the stream
        # already evicted history starts at the surviving prefix (its
        # catch-up windows over evicted spans are empty by design).
        if self.next_seq < source.base_seq:
            self.next_seq = source.base_seq
        index = self.next_seq - source.base_seq
        added: List[StreamElement] = []
        while (
            index < len(source.elements)
            and source.elements[index].instant <= add_until
        ):
            element = source.elements[index]
            if element.instant > keep_after:
                self.content.append(element)
                self.content_seqs.append(self.next_seq)
                added.append(element)
                if self.incremental:
                    self.maintainer.add(element)
            index += 1
            self.next_seq += 1
        self.last_delta = WindowDelta(added=tuple(added), removed=removed)
        return self.last_delta

    def fingerprint(self) -> Tuple[int, int]:
        """Identifies the current window content (contiguous seq range)."""
        if not self.content_seqs:
            return (-1, -1)
        return (self.content_seqs[0], self.content_seqs[-1])

    def graph(self) -> PropertyGraph:
        if self.incremental:
            return self.maintainer.graph()
        from repro.graph.union import union as graph_union

        graph = snapshot_graph(self.content)
        if self.static_graph is not None:
            graph = graph_union(self.static_graph, graph)
        if self.graph_cls is not PropertyGraph:
            # The ablation path folds unions with the reference type;
            # convert so the configured backend serves every read.
            graph = self.graph_cls.of(
                graph.nodes.values(), graph.relationships.values()
            )
        return graph


@dataclass
class RegisteredQuery:
    """Engine-side state of one registered continuous query."""

    query: SeraphQuery
    sink: Sink
    windows: Dict[Tuple[str, int], _WindowState]
    report: Optional[ReportState]
    next_eval: TimeInstant
    uses_window_bounds: bool = True
    warnings: List = field(default_factory=list)
    result: TimeVaryingTable = field(default_factory=TimeVaryingTable)
    evaluations: int = 0
    reused_evaluations: int = 0
    delta_state: Optional[QueryDeltaState] = None
    delta_reason: Optional[str] = None  # why the delta path is off
    delta_evaluations: int = 0  # evaluations served incrementally
    delta_full_refreshes: int = 0
    assignments_retained: int = 0
    assignments_recomputed: int = 0
    done: bool = False
    #: Compiled physical plan (None until first full evaluation, or when
    #: physical planning is off / the query cannot be lowered).
    physical_plan: Optional[PhysicalPlan] = None
    #: Cumulative per-operator row counts for the current plan.
    plan_rows: Dict[int, int] = field(default_factory=dict)
    #: Cumulative per-operator ``[candidates, pruned]`` counters from the
    #: vectorized pruner (empty when vectorization is off).
    plan_prunes: Dict[int, List[int]] = field(default_factory=dict)
    plan_compiles: int = 0
    plan_failed: bool = False
    #: Per derived-stream count of upstream elements this query's windows
    #: consumed (the per-edge counters EXPLAIN ANALYZE renders).
    consumed_elements: Dict[str, int] = field(default_factory=dict)
    _last_fingerprint: Optional[Tuple] = None
    _last_table: Optional[Table] = None
    #: Per-query compiled-expression cache (see repro.cypher.expressions);
    #: threaded through every evaluation so hot-path expressions compile
    #: once per query lifetime.
    _expr_cache: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.query.name


@dataclass
class _PendingEvaluation:
    """One due evaluation after window advancement, before computing.

    Splitting :meth:`SeraphEngine._evaluate` around this value lets the
    parallel engine offload the expensive middle (:meth:`_compute_table`)
    to worker processes while keeping window maintenance and emission
    delivery serial and deterministic.
    """

    registered: RegisteredQuery
    instant: TimeInstant
    interval: "object"
    fingerprint: Tuple
    reusable: bool
    deltas: List[Tuple[_WindowState, WindowDelta]]
    #: Open per-evaluation trace root (None when observability is off).
    span: Optional[object] = None

    @property
    def takes_delta_path(self) -> bool:
        return (
            self.registered.delta_state is not None and len(self.deltas) == 1
        )


class SeraphEngine:
    """Registers Seraph queries and drives their continuous evaluation.

    Parameters
    ----------
    policy:
        Active-substream selection policy (DESIGN.md §3).  The default
        TRAILING reproduces the paper's worked example.
    incremental:
        Maintain snapshot graphs incrementally (True, default) or
        recompute the union per evaluation (False; the ablation baseline).
    static_graph:
        Optional background property graph unioned into every snapshot
        (the paper's future-work item iii).
    reuse_unchanged_windows:
        Skip re-evaluation when no window content changed since the last
        evaluation and the query does not reference win_start/win_end
        (Section 6's "avoidable re-executions on equal window contents").
        Semantically transparent; settable to False for the ablation.
    delta_eval:
        Evaluate delta-eligible queries incrementally (True, default):
        retain previous-assignment matches whose footprint avoids the
        window delta's dirty entities and re-match anchored on the dirty
        neighbourhood only (:mod:`repro.seraph.delta`).  Semantically
        transparent; settable to False for the ablation.
    physical_plans:
        Compile each registered query once into a physical operator plan
        (:mod:`repro.cypher.physical`) and reuse it across evaluations
        (True, default).  Plans are cached per (query text, statistics
        band) and recompiled when label/type statistics drift across a
        band boundary (:mod:`repro.cypher.plan_cache`); queries the
        physical pipeline cannot lower fall back to interpretation.
        Semantically transparent; settable to False for the ablation.
    graph_backend:
        Snapshot-graph implementation: ``"reference"`` (the dict-based
        :class:`~repro.graph.model.PropertyGraph`) or ``"columnar"``
        (the interned, array-backed
        :class:`~repro.graph.columnar.ColumnarGraph` — see
        docs/COLUMNAR.md).  ``None`` (default) defers to the
        ``REPRO_GRAPH_BACKEND`` environment variable, falling back to
        ``"reference"``.  Semantically transparent: emissions are
        byte-identical across backends.
    obs:
        An :class:`repro.obs.Observability` bundle (tracer + metrics
        registry).  ``None`` (default) installs the shared no-op bundle:
        every instrumented site then costs a single attribute check
        (docs/OBSERVABILITY.md).
    """

    def __new__(cls, *args, **kwargs):
        if "parallel" in kwargs and cls is SeraphEngine:
            # The PR 4 factory hook (SeraphEngine(parallel=N) returning a
            # ParallelEngine) went through a DeprecationWarning cycle and
            # is now removed; fail with the migration path.
            raise EngineError(
                "SeraphEngine(parallel=N) was removed; build parallel "
                "stacks through the front door: "
                "repro.build_engine(EngineConfig(parallel_workers=N))"
            )
        return object.__new__(cls)

    def __init__(
        self,
        policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
        incremental: bool = True,
        static_graph: Optional[PropertyGraph] = None,
        reuse_unchanged_windows: bool = True,
        share_windows: bool = True,
        delta_eval: bool = True,
        physical_plans: bool = True,
        graph_backend: Optional[str] = None,
        vectorized: Optional[bool] = None,
        obs: Optional[Observability] = None,
    ):
        from repro.cypher.vectorized import resolve_vectorized
        from repro.graph.columnar import GRAPH_BACKENDS, resolve_backend_name

        self.policy = policy
        self.incremental = incremental
        self.static_graph = static_graph
        self.reuse_unchanged_windows = reuse_unchanged_windows
        self.share_windows = share_windows
        self.delta_eval = delta_eval
        self.physical_plans = physical_plans
        self.graph_backend = resolve_backend_name(graph_backend)
        self._graph_cls = GRAPH_BACKENDS[self.graph_backend]
        # Set-at-a-time candidate pruning (docs/VECTORIZED.md): None
        # defers to REPRO_VECTORIZED, else on by default under the
        # columnar backend whose columns the pruner reads.  Results are
        # byte-identical on or off (superset rule + residual checks).
        self.vectorized = resolve_vectorized(vectorized, self.graph_backend)
        self.plan_cache = PlanCache()
        self._streams: Dict[str, _StreamState] = {}
        self.obs = obs if obs is not None else NOOP_OBS
        self._queries: Dict[str, RegisteredQuery] = {}
        self._shared_windows: Dict[Tuple, _WindowState] = {}
        self._watermark: Optional[TimeInstant] = None
        # Dataflow chaining (docs/DATAFLOW.md): the dependency graph over
        # registered queries, plus one materializer per derived stream.
        self._dataflow = DataflowGraph()
        self._materializers: Dict[str, StreamMaterializer] = {}
        # Streams created by an ``INTO`` clause: they stay marked derived
        # even after their last producer deregisters (while consumers
        # remain), so cascading eviction can reclaim their state once
        # the last consumer goes too.
        self._derived_streams: set = set()

    # -- registry (REGISTER QUERY contract) ----------------------------------

    def register(
        self,
        query: Union[str, SeraphQuery],
        sink: Optional[Sink] = None,
        replace: bool = False,
        validate: bool = True,
    ) -> RegisteredQuery:
        """Register a continuous query; returns its engine-side handle.

        ``REGISTER QUERY name`` names are unique; pass ``replace=True`` to
        edit a previously registered query (the paper's editing contract).
        Semantic validation (undefined variables, aggregates in WHERE —
        :mod:`repro.seraph.validation`) runs by default and raises
        :class:`~repro.errors.SeraphSemanticError` on errors; warnings are
        recorded on the returned handle as ``handle.warnings``.
        """
        if isinstance(query, str):
            query = parse_seraph(query)
        warnings: List = []
        if validate:
            from repro.seraph.validation import validate as validate_query

            warnings = validate_query(query)
        if query.name in self._queries and not replace:
            raise QueryRegistryError(
                f"query {query.name!r} is already registered "
                "(pass replace=True to edit it)"
            )
        # Dataflow edges commit atomically: a registration that would
        # close a cycle raises DataflowCycleError (naming the path) here,
        # before any engine state — windows, shared states — is touched.
        into = query.emits_into if query.is_continuous else None
        self._dataflow.replace(query.name, query.stream_names(), into)
        windows = {}
        for stream_name, width in query.window_keys():
            self._stream_state(stream_name)  # ensure the stream exists
            config = semantics.window_config(query, width)
            share_key = (stream_name, width, config.start, config.slide)
            shared = (
                self._shared_windows.get(share_key)
                if self.share_windows else None
            )
            if shared is not None and shared.last_advanced is None:
                # Lock-step sharing is only safe from a clean state: a
                # late registrant must not see an already-advanced window.
                windows[(stream_name, width)] = shared
                continue
            state = _WindowState(
                config,
                self.policy,
                self.incremental,
                self.static_graph,
                self._graph_cls,
            )
            if self.share_windows and shared is None:
                self._shared_windows[share_key] = state
            windows[(stream_name, width)] = state
        delta_reason = delta_ineligibility(query)
        registered = RegisteredQuery(
            query=query,
            sink=sink if sink is not None else CollectingSink(),
            windows=windows,
            report=ReportState(query.emit.policy) if query.is_continuous else None,
            next_eval=query.starting_at,
            uses_window_bounds=query.references_window_bounds(),
            delta_state=QueryDeltaState() if delta_reason is None else None,
            delta_reason=delta_reason,
        )
        registered.warnings = warnings
        self._queries[query.name] = registered
        if into is not None:
            # One materializer per derived stream, shared by all of its
            # producers; re-registering keeps the existing merge store so
            # node identity stays continuous across query edits.
            self._materializers.setdefault(into, StreamMaterializer(into))
            self._stream_state(into)  # the derived stream exists eagerly
            self._derived_streams.add(into)
        self._cascade_derived()
        return registered

    def deregister(self, name: str) -> None:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        self.plan_cache.evict(self._queries[name].query)
        del self._queries[name]
        self._dataflow.remove(name)
        self._cascade_derived()
        self._evict()

    def _cascade_derived(self) -> None:
        """Cascading eviction for derived streams (docs/DATAFLOW.md).

        A derived stream that lost its last producer drops its
        materializer (node identity restarts if a producer is ever
        re-registered); if additionally no live query consumes it, the
        whole stream state — retained elements included — disappears.
        """
        for stream in list(self._derived_streams):
            if self._dataflow.producers_of(stream):
                continue
            self._materializers.pop(stream, None)
            if not self._dataflow.consumers_of(stream):
                self._derived_streams.discard(stream)
                self._streams.pop(stream, None)

    def registered(self, name: str) -> RegisteredQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        return self._queries[name]

    def sink(self, name: str) -> Sink:
        return self.registered(name).sink

    @property
    def query_names(self) -> List[str]:
        return list(self._queries)

    # -- ingestion ---------------------------------------------------------------

    def _stream_state(self, name: str) -> _StreamState:
        state = self._streams.get(name)
        if state is None:
            state = _StreamState(name)
            self._streams[name] = state
        return state

    def ingest(
        self,
        graph: PropertyGraph,
        instant: TimeInstant,
        stream: str = DEFAULT_STREAM,
    ) -> StreamElement:
        """Ingest one stream pair (G, ω) into the named stream."""
        element = StreamElement(graph=graph, instant=instant)
        self.ingest_element(element, stream)
        return element

    def ingest_element(
        self, element: StreamElement, stream: str = DEFAULT_STREAM
    ) -> None:
        obs = self.obs
        if obs.enabled:
            with obs.tracer.span("ingest", stream=stream,
                                 instant=element.instant):
                self._stream_state(stream).append(element)
            obs.registry.inc("engine.ingested")
            obs.registry.inc(f"engine.stream.{stream}.ingested")
        else:
            self._stream_state(stream).append(element)
        if self._watermark is None or element.instant > self._watermark:
            self._watermark = element.instant

    @property
    def stream(self) -> PropertyGraphStream:
        """The default input stream (single-stream convenience view)."""
        return self._stream_state(DEFAULT_STREAM).stream

    # -- evaluation loop -----------------------------------------------------------

    def advance_to(self, instant: TimeInstant) -> List[Emission]:
        """Fire every due evaluation with ET instant ≤ ``instant``.

        Returns the emissions produced, in firing order.
        """
        emissions: List[Emission] = []
        while True:
            due = self._due_queries(instant)
            if not due:
                break
            for index, chunk in enumerate(self._dataflow_stages(due)):
                self._run_stage(index, chunk, instant, emissions)
        self._evict()
        return emissions

    def _due_queries(self, instant: TimeInstant) -> List[RegisteredQuery]:
        """Due evaluations in firing order: global ET order, then
        dataflow stage (producers fire before same-instant consumers,
        so staged propagation is deterministic and replayable).  With no
        ``INTO`` queries every stage is 0 and the order is exactly the
        pre-dataflow one."""
        due = [
            registered
            for registered in self._queries.values()
            if not registered.done and registered.next_eval <= instant
        ]
        due.sort(key=lambda registered: (
            registered.next_eval,
            self._dataflow.stage_of(registered.name),
        ))
        return due

    def _dataflow_stages(
        self, due: List[RegisteredQuery]
    ) -> Iterable[List[RegisteredQuery]]:
        """Split a sorted due list into dataflow stage chunks.

        A chunk boundary falls before any query that consumes a derived
        stream some query already in the chunk produces: everything
        before the boundary must finish (and materialize) before the
        consumer's windows advance.  With no ``INTO`` queries this
        yields the whole list once — the pre-dataflow fast path, and the
        unit the parallel engine batches between its barriers.
        """
        if self._dataflow.is_trivial:
            yield due
            return
        chunk: List[RegisteredQuery] = []
        produced: set = set()
        for registered in due:
            if any(stream in produced
                   for stream in registered.query.stream_names()):
                yield chunk
                chunk = []
                produced = set()
            chunk.append(registered)
            into = registered.query.emits_into
            if into is not None:
                produced.add(into)
        if chunk:
            yield chunk

    def _run_stage(
        self,
        index: int,
        chunk: List[RegisteredQuery],
        instant: TimeInstant,
        emissions: List[Emission],
    ) -> None:
        """Evaluate one dataflow stage chunk (serial engine)."""
        obs = self.obs
        staged = obs.enabled and not self._dataflow.is_trivial
        if staged:
            started = time.perf_counter()
        for registered in chunk:
            if registered.next_eval > instant or registered.done:
                continue
            emissions.append(self._evaluate(registered))
        if staged:
            obs.tracer.add_completed(
                "dataflow_stage", time.perf_counter() - started,
                stage=index, queries=len(chunk),
            )
            obs.registry.inc("dataflow.stages")

    def run_stream(
        self,
        elements: Iterable[StreamElement],
        until: Optional[TimeInstant] = None,
        stream: str = DEFAULT_STREAM,
    ) -> List[Emission]:
        """Ingest a whole (finite) stream, firing evaluations in arrival
        order; then advance to ``until`` (default: the last arrival)."""
        emissions: List[Emission] = []
        last: Optional[TimeInstant] = None
        for element in elements:
            # Evaluations strictly before this arrival must not see it.
            emissions.extend(self.advance_to(element.instant - 1))
            self.ingest_element(element, stream)
            last = element.instant
        final = until if until is not None else last
        if final is not None:
            emissions.extend(self.advance_to(final))
        return emissions

    def run_streams(
        self,
        streams: Dict[str, Iterable[StreamElement]],
        until: Optional[TimeInstant] = None,
    ) -> List[Emission]:
        """Multi-stream run: merge named streams by arrival instant and
        fire evaluations along the way."""
        tagged: List[Tuple[TimeInstant, int, str, StreamElement]] = []
        for order, (name, elements) in enumerate(streams.items()):
            for element in elements:
                tagged.append((element.instant, order, name, element))
        tagged.sort(key=lambda item: (item[0], item[1]))
        emissions: List[Emission] = []
        last: Optional[TimeInstant] = None
        for instant, _order, name, element in tagged:
            emissions.extend(self.advance_to(instant - 1))
            self.ingest_element(element, name)
            last = instant
        final = until if until is not None else last
        if final is not None:
            emissions.extend(self.advance_to(final))
        return emissions

    # -- internals -------------------------------------------------------------------

    def _evaluate(self, registered: RegisteredQuery) -> Emission:
        pending = self._begin_evaluation(registered)
        table = self._compute_table(pending)
        return self._finish_evaluation(pending, table)

    def _begin_evaluation(
        self, registered: RegisteredQuery
    ) -> _PendingEvaluation:
        """Advance windows and classify the evaluation (serial, stateful)."""
        query = registered.query
        instant = registered.next_eval
        obs = self.obs
        span = None
        if obs.enabled:
            # Explicit parenting: the parallel engine opens many
            # evaluation roots per batch; they must not nest.
            span = obs.tracer.start("evaluate", query=query.name,
                                    instant=instant)
            advance_started = time.perf_counter()
        deltas: List[Tuple[_WindowState, WindowDelta]] = []
        derived = not self._dataflow.is_trivial
        for (stream_name, _width), state in registered.windows.items():
            delta = state.advance(self._stream_state(stream_name), instant)
            deltas.append((state, delta))
            if derived and delta.added \
                    and self._dataflow.producers_of(stream_name):
                # Per-edge consumption counter: upstream emissions are
                # the delta for this downstream window (EXPLAIN
                # ANALYZE's dataflow edges render these).
                registered.consumed_elements[stream_name] = (
                    registered.consumed_elements.get(stream_name, 0)
                    + len(delta.added)
                )
        if span is not None:
            elapsed = time.perf_counter() - advance_started
            obs.tracer.add_completed(
                "window_advance", elapsed, parent=span,
                windows=len(registered.windows),
            )
            obs.record_stage(query.name, "window_advance", elapsed)

        interval = semantics.reported_interval(query, instant, self.policy)
        fingerprint = tuple(
            (key, state.fingerprint())
            for key, state in sorted(registered.windows.items())
        )
        reusable = (
            self.reuse_unchanged_windows
            and not registered.uses_window_bounds
            and registered._last_table is not None
            and fingerprint == registered._last_fingerprint
        )
        return _PendingEvaluation(
            registered=registered,
            instant=instant,
            interval=interval,
            fingerprint=fingerprint,
            reusable=reusable,
            deltas=deltas,
            span=span,
        )

    def _needs_full_evaluation(self, pending: _PendingEvaluation) -> bool:
        """True when this evaluation will run the full (pure) body — the
        part a worker process can compute from pickled snapshots."""
        return not pending.reusable and not (
            self.delta_eval and pending.takes_delta_path
        )

    def _compute_table(self, pending: _PendingEvaluation) -> Table:
        """The evaluation work itself: reuse / delta / full execution."""
        registered = pending.registered
        obs = self.obs
        if pending.reusable:
            registered.reused_evaluations += 1
            if obs.enabled:
                obs.tracer.add_completed("reuse", 0.0, parent=pending.span)
                obs.record_stage(registered.name, "reuse", 0.0)
            return registered._last_table
        if self.delta_eval and pending.takes_delta_path:
            window_state, delta = pending.deltas[0]
            if obs.enabled:
                with obs.tracer.span("match_delta",
                                     parent=pending.span) as stage:
                    snapshot = self._timed_graph(
                        window_state, registered.name, stage
                    )
                    table, stats = evaluate_delta(
                        registered.query,
                        registered.delta_state,
                        snapshot,
                        delta,
                        pending.interval,
                        expr_cache=registered._expr_cache,
                        span=stage,
                        plan=self._physical_plan(
                            registered, lambda _s, _w: snapshot
                        ),
                        vectorized=self.vectorized,
                    )
                obs.record_stage(
                    registered.name, "match_delta", stage.duration_seconds
                )
                if self.vectorized:
                    obs.record_stage(
                        registered.name, "vectorize", stats.vectorize_seconds
                    )
            else:
                snapshot = window_state.graph()
                table, stats = evaluate_delta(
                    registered.query,
                    registered.delta_state,
                    snapshot,
                    delta,
                    pending.interval,
                    expr_cache=registered._expr_cache,
                    plan=self._physical_plan(
                        registered, lambda _s, _w: snapshot
                    ),
                    vectorized=self.vectorized,
                )
            if stats.full_refresh:
                registered.delta_full_refreshes += 1
            else:
                registered.delta_evaluations += 1
            registered.assignments_retained += stats.retained
            registered.assignments_recomputed += stats.recomputed
            return table
        if registered.delta_state is not None:
            # An eligible query evaluated outside the delta path (e.g.
            # delta_eval toggled off): its assignment set no longer
            # tracks the window content.
            registered.delta_state.invalidate()
        if not obs.enabled:
            provider = self._memoized_provider(
                self._graph_provider(registered)
            )
            plan = self._physical_plan(registered, provider)
            if plan is not None:
                return self._run_plan(
                    registered, plan, provider, pending.interval
                )
            return semantics.execute_body(
                registered.query,
                provider,
                pending.interval,
                expr_cache=registered._expr_cache,
                vectorized=self.vectorized,
            )
        with obs.tracer.span("match_full", parent=pending.span) as stage:
            provider = self._memoized_provider(
                self._traced_provider(registered, stage)
            )
            plan = self._physical_plan(registered, provider)
            if plan is not None:
                table = self._run_plan(
                    registered, plan, provider, pending.interval
                )
            else:
                table = semantics.execute_body(
                    registered.query,
                    provider,
                    pending.interval,
                    expr_cache=registered._expr_cache,
                    vectorized=self.vectorized,
                )
        obs.record_stage(
            registered.name, "match_full", stage.duration_seconds
        )
        return table

    def _timed_graph(self, window_state: _WindowState, query_name: str,
                     parent) -> PropertyGraph:
        """Snapshot-build stage: one window state's graph, under a span."""
        obs = self.obs
        with obs.tracer.span("snapshot_build", parent=parent) as span:
            graph = window_state.graph()
            span.annotate(order=graph.order, size=graph.size)
        obs.record_stage(query_name, "snapshot_build", span.duration_seconds)
        return graph

    def _traced_provider(self, registered: RegisteredQuery, parent):
        """The graph provider with snapshot-build spans attached."""

        def graph_for(stream_name: str, width: int) -> PropertyGraph:
            state = registered.windows.get((stream_name, width))
            if state is None:
                raise EngineError(
                    f"no window state for stream {stream_name!r} "
                    f"width {width}"
                )
            return self._timed_graph(state, registered.name, parent)

        return graph_for

    def _finish_evaluation(
        self, pending: _PendingEvaluation, table: Table
    ) -> Emission:
        """Apply report policy, deliver to the sink, advance ET (serial)."""
        registered = pending.registered
        query = registered.query
        instant = pending.instant
        interval = pending.interval
        obs = self.obs
        registered._last_fingerprint = pending.fingerprint
        registered._last_table = table

        if obs.enabled:
            with obs.tracer.span("report", parent=pending.span,
                                 policy=query.emit.policy.value
                                 if registered.report is not None
                                 else None) as stage:
                if registered.report is not None:
                    emitted = registered.report.apply(table)
                else:
                    emitted = table
            obs.record_stage(query.name, "report", stage.duration_seconds)
        elif registered.report is not None:
            emitted = registered.report.apply(table)
        else:
            emitted = table
        annotated = TimeAnnotatedTable(table=emitted, interval=interval)
        registered.result.append(
            TimeAnnotatedTable(table=table, interval=interval)
        )
        registered.evaluations += 1
        if query.is_continuous:
            registered.next_eval = instant + query.slide
        else:
            registered.done = True
        emission = Emission(query_name=query.name, instant=instant, table=annotated)
        if obs.enabled:
            with obs.tracer.span("sink", parent=pending.span,
                                 rows=len(annotated)) as stage:
                registered.sink.receive(emission)
            obs.record_stage(query.name, "sink", stage.duration_seconds)
            if query.emits_into is not None:
                self._materialize_emission(registered, emission,
                                           pending.span)
            span = pending.span
            span.annotate(rows=len(annotated))
            span.finish()
            obs.record_stage(query.name, "total", span.duration_seconds)
            obs.registry.inc("engine.evaluations")
            obs.registry.observe(
                f"query.{query.name}.rows", len(annotated)
            )
        else:
            registered.sink.receive(emission)
            if query.emits_into is not None:
                self._materialize_emission(registered, emission, None)
        return emission

    def _materialize_emission(
        self, registered: RegisteredQuery, emission: Emission, span
    ) -> None:
        """Feed one producer emission into its derived stream.

        Runs after sink delivery, inside the producer's evaluation turn,
        so same-tick downstream stages see the new element when their
        windows advance (the staged-propagation contract).
        """
        into = registered.query.emits_into
        materializer = self._materializers.get(into)
        if materializer is None:  # pragma: no cover — register creates it
            materializer = self._materializers[into] = \
                StreamMaterializer(into)
        obs = self.obs
        if obs.enabled:
            started = time.perf_counter()
        element = materializer.materialize(emission)
        if element is not None:
            self._stream_state(into).append(element)
            if self._watermark is None or element.instant > self._watermark:
                self._watermark = element.instant
        if obs.enabled:
            elapsed = time.perf_counter() - started
            obs.tracer.add_completed(
                "materialize", elapsed, parent=span, stream=into,
                rows=len(emission.table) if element is not None else 0,
            )
            obs.record_stage(registered.name, "materialize", elapsed)
            if element is not None:
                obs.registry.inc("dataflow.materialized_elements")
                obs.registry.inc("dataflow.materialized_rows",
                                 len(emission.table))
                obs.registry.inc(f"dataflow.stream.{into}.elements")

    def _graph_provider(self, registered: RegisteredQuery):
        def graph_for(stream_name: str, width: int) -> PropertyGraph:
            state = registered.windows.get((stream_name, width))
            if state is None:
                raise EngineError(
                    f"no window state for stream {stream_name!r} "
                    f"width {width}"
                )
            return state.graph()

        return graph_for

    @staticmethod
    def _memoized_provider(graph_for):
        """Build each window's snapshot once per evaluation.

        Plan lookup reads statistics from the same snapshots the plan
        then executes against; memoizing keeps that one graph build."""
        snapshots: Dict[Tuple[str, int], PropertyGraph] = {}

        def provider(stream_name: str, width: int) -> PropertyGraph:
            key = (stream_name, width)
            if key not in snapshots:
                snapshots[key] = graph_for(stream_name, width)
            return snapshots[key]

        return provider

    def _physical_plan(
        self, registered: RegisteredQuery, stats_for
    ) -> Optional[PhysicalPlan]:
        """The cached compiled plan, or ``None`` (interpreted fallback)."""
        if not self.physical_plans or registered.plan_failed:
            return None
        obs = self.obs
        misses_before = self.plan_cache.misses
        started = time.perf_counter()
        try:
            plan = self.plan_cache.plan_for(registered.query, stats_for)
        except PhysicalPlanError:
            registered.plan_failed = True
            return None
        if self.plan_cache.misses != misses_before:
            registered.plan_compiles += 1
            if obs.enabled:
                obs.record_stage(
                    registered.name,
                    "plan_compile",
                    time.perf_counter() - started,
                )
        if registered.physical_plan is not plan:
            registered.physical_plan = plan
            registered.plan_rows = {}
            registered.plan_prunes = {}
        return plan

    def _run_plan(
        self,
        registered: RegisteredQuery,
        plan: PhysicalPlan,
        graph_for,
        interval,
    ) -> Table:
        """Execute a compiled plan, accumulating per-operator row counts
        (and, when vectorized, candidate/pruned counters plus the
        ``vectorize`` stage's set-construction time)."""
        rows: Dict[int, int] = {}
        prunes: Optional[Dict[int, List[int]]] = (
            {} if self.vectorized else None
        )
        prune_stats: Optional[Dict[str, float]] = (
            {} if self.vectorized else None
        )
        table = execute_plan(
            plan,
            graph_for,
            interval,
            expr_cache=registered._expr_cache,
            rows=rows,
            vectorized=self.vectorized,
            prunes=prunes,
            prune_stats=prune_stats,
        )
        plan_rows = registered.plan_rows
        obs = self.obs
        for op_id, count in rows.items():
            plan_rows[op_id] = plan_rows.get(op_id, 0) + count
            if obs.enabled:
                obs.registry.inc(
                    f"query.{registered.name}.op.{op_id}.rows", count
                )
        if prunes:
            self._merge_plan_prunes(registered, prunes)
        if obs.enabled and prune_stats is not None:
            obs.record_stage(
                registered.name,
                "vectorize",
                prune_stats.get("build_seconds", 0.0),
            )
        return table

    @staticmethod
    def _merge_plan_prunes(
        registered: RegisteredQuery, prunes: Dict[int, List[int]]
    ) -> None:
        plan_prunes = registered.plan_prunes
        for op_id, (candidates, pruned) in prunes.items():
            slot = plan_prunes.get(op_id)
            if slot is None:
                plan_prunes[op_id] = [candidates, pruned]
            else:
                slot[0] += candidates
                slot[1] += pruned

    def _evict(self) -> None:
        """Drop stream elements no future evaluation can reach, and shared
        window states no live query reads."""
        horizons: Dict[str, TimeInstant] = {}
        min_seqs: Dict[str, int] = {}
        live_states = set()
        for registered in self._queries.values():
            if registered.done:
                continue
            for (stream_name, width), state in registered.windows.items():
                live_states.add(id(state))
                horizon = registered.next_eval - width
                if stream_name not in horizons:
                    horizons[stream_name] = horizon
                    min_seqs[stream_name] = state.next_seq
                else:
                    horizons[stream_name] = min(horizons[stream_name], horizon)
                    min_seqs[stream_name] = min(
                        min_seqs[stream_name], state.next_seq
                    )
        if self._shared_windows:
            self._shared_windows = {
                key: state
                for key, state in self._shared_windows.items()
                if id(state) in live_states
            }
        for stream_name, state in self._streams.items():
            if stream_name in horizons:
                state.evict(horizons[stream_name], min_seqs[stream_name])
            else:
                # No live query reads this stream: nothing retained here
                # can ever be evaluated again.
                state.evict_all()

    @property
    def retained_elements(self) -> int:
        """How many stream elements the engine currently retains."""
        return sum(len(state.elements) for state in self._streams.values())

    # -- dataflow introspection -------------------------------------------------

    @property
    def dataflow(self) -> DataflowGraph:
        """The dependency graph over registered queries."""
        return self._dataflow

    def derived_streams(self) -> List[str]:
        """Named derived streams, in first-producer registration order."""
        return self._dataflow.produced_streams()

    def derived_stream(self, name: str) -> Dict[str, object]:
        """One derived stream's status (producers, consumers, cursor).

        Raises :class:`~repro.errors.UnknownStreamError` when no
        registered query emits into ``name``.
        """
        status = self.dataflow_status()["streams"]
        if name not in status:
            raise UnknownStreamError(
                f"no registered query emits into stream {name!r} "
                f"(derived streams: {sorted(status) or 'none'})"
            )
        return status[name]

    def dataflow_status(self) -> Dict[str, object]:
        """The ``status()["dataflow"]`` section (docs/DATAFLOW.md).

        ``cursor`` counts elements materialized into the stream over its
        lifetime (monotonic; survives checkpoints), ``retained`` the
        elements currently held for live consumers.
        """
        streams: Dict[str, Dict[str, object]] = {}
        for stream in self._dataflow.produced_streams():
            materializer = self._materializers.get(stream)
            state = self._streams.get(stream)
            streams[stream] = {
                "producers": self._dataflow.producers_of(stream),
                "consumers": self._dataflow.consumers_of(stream),
                "cursor": materializer.elements if materializer else 0,
                "rows": materializer.rows if materializer else 0,
                "retained": len(state.elements) if state else 0,
            }
        return {
            "streams": streams,
            "order": self._dataflow.topological_names(),
            "stages": {
                name: self._dataflow.stage_of(name)
                for name in self._queries
            },
            "edges": [
                {
                    "producer": producer,
                    "stream": stream,
                    "consumer": consumer,
                    "emitted": streams[stream]["cursor"],
                    "consumed": (
                        self._queries[consumer]
                        .consumed_elements.get(stream, 0)
                        if consumer in self._queries else 0
                    ),
                }
                for producer, stream, consumer in self._dataflow.edges()
            ],
        }

    def status(self) -> Dict[str, object]:
        """Operational snapshot for monitoring dashboards/logs."""
        return {
            "queries": {
                name: {
                    "evaluations": registered.evaluations,
                    "reused": registered.reused_evaluations,
                    "delta": registered.delta_evaluations,
                    "delta_full_refreshes": registered.delta_full_refreshes,
                    "delta_reason": registered.delta_reason,
                    "assignments_retained": registered.assignments_retained,
                    "assignments_recomputed": registered.assignments_recomputed,
                    "next_eval": registered.next_eval,
                    "done": registered.done,
                    "warnings": [str(w) for w in registered.warnings],
                    "plan_compiles": registered.plan_compiles,
                    "plan_operators": (
                        registered.physical_plan.op_count
                        if registered.physical_plan is not None
                        else 0
                    ),
                    "plan_failed": registered.plan_failed,
                }
                for name, registered in self._queries.items()
            },
            "planner": {
                "physical_plans": self.physical_plans,
                **self.plan_cache.stats(),
            },
            "streams": {
                name: {
                    "retained": len(state.elements),
                    "head": state.stream.head_instant,
                }
                for name, state in self._streams.items()
            },
            "watermark": self._watermark,
            "policy": self.policy.value,
            "incremental": self.incremental,
            "delta_eval": self.delta_eval,
            "graph_backend": self.graph_backend,
            "vectorized": self.vectorized,
            "shared_window_states": len(self._shared_windows),
            "dataflow": self.dataflow_status(),
        }

    def unified_status(self) -> Dict[str, object]:
        """The namespaced, schema-versioned status document
        (docs/OBSERVABILITY.md; :mod:`repro.obs.schema`)."""
        from repro.obs.schema import unified_status

        return unified_status(self)
