"""Registration-time semantic validation of Seraph queries.

The paper motivates formal semantics with "avoid underlying ambiguities
and incorrect behavior of the queries"; this module adds the static
checks an implementation wants *before* a query starts running forever:

* **errors** (raise :class:`SeraphSemanticError` via :func:`validate`):
  - an expression references a name no clause ever binds,
  - an aggregate call appears in a WHERE predicate;
* **warnings** (returned, never raised):
  - a name is used after a WITH projection dropped it,
  - EVERY exceeds a WITHIN width (evaluations can miss events entirely
    under gapped windows),
  - a RETURN-terminal query carries no window-relevant clauses.

``SeraphEngine.register`` runs :func:`validate` by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple, Union

from repro.cypher import ast as cypher_ast
from repro.cypher.expressions import contains_aggregate
from repro.errors import DataflowCycleError, SeraphSemanticError
from repro.graph.temporal import format_duration
from repro.seraph.ast import SeraphMatch, SeraphQuery
from repro.stream.tvt import WIN_END, WIN_START

#: Names implicitly in scope in every Seraph expression (Definition 5.6).
IMPLICIT_NAMES = frozenset({WIN_START, WIN_END})


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str  # 'error' | 'warning'
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.message}"


def expression_variables(expression: cypher_ast.Expression,
                         local: frozenset = frozenset()) -> Iterator[str]:
    """Free variable names of an expression (comprehension/quantifier
    binders are local and excluded)."""
    if isinstance(expression, cypher_ast.Variable):
        if expression.name not in local:
            yield expression.name
        return
    if isinstance(expression, cypher_ast.ListComprehension):
        yield from expression_variables(expression.source, local)
        inner = local | {expression.variable}
        if expression.predicate is not None:
            yield from expression_variables(expression.predicate, inner)
        if expression.projection is not None:
            yield from expression_variables(expression.projection, inner)
        return
    if isinstance(expression, cypher_ast.Quantifier):
        yield from expression_variables(expression.source, local)
        inner = local | {expression.variable}
        yield from expression_variables(expression.predicate, inner)
        return
    if isinstance(expression, cypher_ast.PatternPredicate):
        # Unbound names inside a pattern predicate are existential.
        for node in expression.pattern.nodes:
            for _key, value in node.properties:
                yield from expression_variables(value, local)
        for rel in expression.pattern.relationships:
            for _key, value in rel.properties:
                yield from expression_variables(value, local)
        return
    for child in _children(expression):
        yield from expression_variables(child, local)


def _children(expression: cypher_ast.Expression) \
        -> Iterator[cypher_ast.Expression]:
    if isinstance(expression, cypher_ast.PropertyAccess):
        yield expression.subject
    elif isinstance(expression, (cypher_ast.And, cypher_ast.Or,
                                 cypher_ast.Xor)):
        yield expression.left
        yield expression.right
    elif isinstance(expression, cypher_ast.Not):
        yield expression.operand
    elif isinstance(expression, cypher_ast.UnaryOp):
        yield expression.operand
    elif isinstance(expression, cypher_ast.BinaryOp):
        yield expression.left
        yield expression.right
    elif isinstance(expression, cypher_ast.Comparison):
        yield expression.first
        for _op, operand in expression.rest:
            yield operand
    elif isinstance(expression, cypher_ast.IsNull):
        yield expression.operand
    elif isinstance(expression, cypher_ast.InList):
        yield expression.item
        yield expression.container
    elif isinstance(expression, cypher_ast.StringPredicate):
        yield expression.left
        yield expression.right
    elif isinstance(expression, cypher_ast.FunctionCall):
        yield from expression.args
    elif isinstance(expression, cypher_ast.ListLiteral):
        yield from expression.items
    elif isinstance(expression, cypher_ast.MapLiteral):
        for _key, value in expression.entries:
            yield value
    elif isinstance(expression, cypher_ast.Index):
        yield expression.subject
        yield expression.index
    elif isinstance(expression, cypher_ast.Slice):
        yield expression.subject
        if expression.lower is not None:
            yield expression.lower
        if expression.upper is not None:
            yield expression.upper
    elif isinstance(expression, cypher_ast.CaseExpression):
        if expression.operand is not None:
            yield expression.operand
        for when, then in expression.alternatives:
            yield when
            yield then
        if expression.default is not None:
            yield expression.default


def _pattern_expression_variables(pattern: cypher_ast.Pattern) \
        -> Iterator[str]:
    for path in pattern.paths:
        for node in path.nodes:
            for _key, value in node.properties:
                yield from expression_variables(value)
        for rel in path.relationships:
            for _key, value in rel.properties:
                yield from expression_variables(value)


def check(query: SeraphQuery) -> List[Issue]:
    """Run all validations; returns findings (possibly empty)."""
    issues: List[Issue] = []
    scope: Set[str] = set(IMPLICIT_NAMES)
    ever_bound: Set[str] = set(IMPLICIT_NAMES)

    def check_expression(expression: cypher_ast.Expression,
                         context: str) -> None:
        for name in expression_variables(expression):
            if name in scope:
                continue
            if name in ever_bound:
                issues.append(Issue(
                    "warning",
                    f"{context} references {name!r}, which an earlier WITH "
                    "projected away",
                ))
            else:
                issues.append(Issue(
                    "error",
                    f"{context} references undefined variable {name!r}",
                ))

    def check_where(where: Optional[cypher_ast.Expression],
                    context: str) -> None:
        if where is None:
            return
        if contains_aggregate(where):
            issues.append(Issue(
                "error", f"aggregate call inside {context} WHERE"
            ))
        check_expression(where, f"{context} WHERE")

    for clause in query.body:
        if isinstance(clause, SeraphMatch):
            for name in _pattern_expression_variables(clause.match.pattern):
                if name not in scope and name not in ever_bound:
                    issues.append(Issue(
                        "error",
                        "MATCH pattern property references undefined "
                        f"variable {name!r}",
                    ))
            scope.update(clause.match.pattern.free_variables())
            ever_bound.update(scope)
            check_where(clause.match.where, "MATCH")
        elif isinstance(clause, cypher_ast.Unwind):
            check_expression(clause.source, "UNWIND")
            scope.add(clause.alias)
            ever_bound.add(clause.alias)
        elif isinstance(clause, cypher_ast.With):
            for item in clause.items:
                check_expression(item.expression, "WITH item")
            for order in clause.order_by:
                check_expression(order.expression, "ORDER BY")
            new_scope = set(IMPLICIT_NAMES)
            if clause.star:
                new_scope |= scope
            for item in clause.items:
                new_scope.add(item.output_name())
            scope = new_scope
            ever_bound.update(scope)
            check_where(clause.where, "WITH")
        else:  # pragma: no cover — parser restricts body clause types
            issues.append(Issue(
                "error",
                f"unsupported clause {type(clause).__name__} in a "
                "Seraph body",
            ))

    terminal_items: Tuple[cypher_ast.ProjectionItem, ...]
    if query.emit is not None:
        terminal_items = query.emit.items
        context = "EMIT"
    else:
        terminal_items = query.final_return.items
        context = "RETURN"
    for item in terminal_items:
        check_expression(item.expression, f"{context} item")

    if query.is_continuous and query.emits_into is not None \
            and query.emits_into in query.stream_names():
        issues.append(Issue(
            "error",
            f"EMIT INTO {query.emits_into!r} reads its own output stream: "
            f"{query.name} -[{query.emits_into}]-> {query.name}",
        ))

    if query.is_continuous:
        for stream_name, width in query.window_keys():
            if query.slide > width:
                issues.append(Issue(
                    "warning",
                    f"EVERY {format_duration(query.slide)} exceeds the "
                    f"WITHIN {format_duration(width)} window on stream "
                    f"{stream_name!r}: events arriving between windows "
                    "are never evaluated",
                ))
    return issues


def validate(query: Union[SeraphQuery, str]) -> List[Issue]:
    """Raise on errors; return the warnings."""
    if isinstance(query, str):
        from repro.seraph.parser import parse_seraph

        query = parse_seraph(query)
    if query.is_continuous and query.emits_into is not None \
            and query.emits_into in query.stream_names():
        # The length-1 dataflow cycle gets its typed error here already;
        # longer cycles are only visible at registration time, where the
        # dependency graph raises the same type (docs/DATAFLOW.md).
        raise DataflowCycleError(
            f"query {query.name!r} consumes the stream it emits into: "
            f"{query.name} -[{query.emits_into}]-> {query.name}"
        )
    issues = check(query)
    errors = [issue for issue in issues if issue.severity == "error"]
    if errors:
        raise SeraphSemanticError(
            "; ".join(issue.message for issue in errors)
        )
    return [issue for issue in issues if issue.severity == "warning"]
