"""Standalone named-query registry.

:class:`SeraphEngine` embeds registration directly; this module offers the
same ``REGISTER QUERY`` contract (unique names, editing, deleting) as a
separate component for tooling that manages query texts without running
an engine — e.g. validating a catalog of continuous queries.

The registry also fronts a :class:`~repro.cypher.plan_cache.PlanCache`:
:meth:`QueryRegistry.physical_plan` compiles (and caches) the physical
plan of a registered query under supplied statistics, so catalog tooling
can inspect plans without an engine; replacing or deleting a query
evicts its plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.cypher.plan_cache import PlanCache
from repro.errors import QueryRegistryError
from repro.seraph.ast import SeraphQuery
from repro.seraph.parser import parse_seraph


class QueryRegistry:
    """Holds parsed Seraph queries by their registered name."""

    def __init__(self, plan_cache: Optional[PlanCache] = None):
        self._queries: Dict[str, SeraphQuery] = {}
        self.plan_cache = plan_cache if plan_cache is not None \
            else PlanCache()

    def register(self, query: Union[str, SeraphQuery],
                 replace: bool = False) -> SeraphQuery:
        if isinstance(query, str):
            query = parse_seraph(query)
        if query.name in self._queries and not replace:
            raise QueryRegistryError(
                f"query {query.name!r} is already registered"
            )
        if query.name in self._queries:
            self.plan_cache.evict(self._queries[query.name])
        self._queries[query.name] = query
        return query

    def get(self, name: str) -> SeraphQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        return self._queries[name]

    def physical_plan(self, name: str, stats_for):
        """The cached physical plan of a registered query.

        ``stats_for(stream, width)`` supplies planner statistics (a graph
        or :class:`~repro.cypher.planner.GraphStatistics`) per window.
        Raises :class:`~repro.errors.PhysicalPlanError` when the query
        cannot be lowered."""
        return self.plan_cache.plan_for(self.get(name), stats_for)

    def delete(self, name: str) -> SeraphQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        query = self._queries.pop(name)
        self.plan_cache.evict(query)
        return query

    def names(self) -> List[str]:
        return list(self._queries)

    def __contains__(self, name: object) -> bool:
        return name in self._queries

    def __len__(self) -> int:
        return len(self._queries)
