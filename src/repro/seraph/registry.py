"""Standalone named-query registry.

:class:`SeraphEngine` embeds registration directly; this module offers the
same ``REGISTER QUERY`` contract (unique names, editing, deleting) as a
separate component for tooling that manages query texts without running
an engine — e.g. validating a catalog of continuous queries.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import QueryRegistryError
from repro.seraph.ast import SeraphQuery
from repro.seraph.parser import parse_seraph


class QueryRegistry:
    """Holds parsed Seraph queries by their registered name."""

    def __init__(self):
        self._queries: Dict[str, SeraphQuery] = {}

    def register(self, query: Union[str, SeraphQuery],
                 replace: bool = False) -> SeraphQuery:
        if isinstance(query, str):
            query = parse_seraph(query)
        if query.name in self._queries and not replace:
            raise QueryRegistryError(
                f"query {query.name!r} is already registered"
            )
        self._queries[query.name] = query
        return query

    def get(self, name: str) -> SeraphQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        return self._queries[name]

    def delete(self, name: str) -> SeraphQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        return self._queries.pop(name)

    def names(self) -> List[str]:
        return list(self._queries)

    def __contains__(self, name: object) -> bool:
        return name in self._queries

    def __len__(self) -> int:
        return len(self._queries)
