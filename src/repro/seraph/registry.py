"""Standalone named-query registry and the dataflow dependency graph.

:class:`SeraphEngine` embeds registration directly; this module offers the
same ``REGISTER QUERY`` contract (unique names, editing, deleting) as a
separate component for tooling that manages query texts without running
an engine — e.g. validating a catalog of continuous queries.

The registry also fronts a :class:`~repro.cypher.plan_cache.PlanCache`:
:meth:`QueryRegistry.physical_plan` compiles (and caches) the physical
plan of a registered query under supplied statistics, so catalog tooling
can inspect plans without an engine; replacing or deleting a query
evicts its plan.

:class:`DataflowGraph` tracks which registered query produces which
derived stream (``EMIT ... INTO``) and which queries consume it, rejects
cycles with the path named, and assigns every query a topological
**stage** — the tick-scheduling order the engine evaluates under so a
producer's emissions are visible to same-instant downstream evaluations
(docs/DATAFLOW.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.cypher.plan_cache import PlanCache
from repro.errors import DataflowCycleError, QueryRegistryError
from repro.seraph.ast import SeraphQuery
from repro.seraph.parser import parse_seraph


class DataflowGraph:
    """The dependency graph over registered queries and derived streams.

    Nodes are query names; query ``p`` has an edge to query ``c`` when
    ``c`` reads (``FROM STREAM``) the stream ``p`` emits into.  A stream
    name that no query produces is simply an external stream — consuming
    it creates no edge, so "unknown stream" is never a registration
    error, only a lookup error (:class:`~repro.errors.UnknownStreamError`
    at the introspection surfaces).

    Mutations are validate-then-commit: :meth:`add` and :meth:`replace`
    raise :class:`~repro.errors.DataflowCycleError` (naming the cycle
    path through its streams) without changing the graph.
    """

    def __init__(self) -> None:
        # name -> (consumed stream names, produced stream name or None),
        # in registration order (dicts preserve insertion order).
        self._nodes: Dict[str, Tuple[Tuple[str, ...], Optional[str]]] = {}
        self._stages: Dict[str, int] = {}

    # -- mutation ---------------------------------------------------------------

    def add(self, name: str, consumes: Tuple[str, ...],
            produces: Optional[str] = None) -> None:
        trial = dict(self._nodes)
        trial[name] = (tuple(consumes), produces)
        cycle = self._find_cycle(trial, name)
        if cycle is not None:
            raise DataflowCycleError(
                f"registering {name!r} would close a dataflow cycle: "
                + cycle
            )
        self._nodes = trial
        self._restage()

    def replace(self, name: str, consumes: Tuple[str, ...],
                produces: Optional[str] = None) -> None:
        """Re-register ``name`` with new edges; atomic like :meth:`add`."""
        self.add(name, consumes, produces)

    def remove(self, name: str) -> None:
        self._nodes.pop(name, None)
        self._restage()

    # -- queries ----------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    @property
    def is_trivial(self) -> bool:
        """True when no registered query emits into a stream — the
        engine's pre-dataflow fast path."""
        return all(produced is None
                   for _, produced in self._nodes.values())

    def produced_streams(self) -> List[str]:
        """Derived stream names in first-producer registration order."""
        streams: List[str] = []
        for _, (_, produced) in self._nodes.items():
            if produced is not None and produced not in streams:
                streams.append(produced)
        return streams

    def producers_of(self, stream: str) -> List[str]:
        return [name for name, (_, produced) in self._nodes.items()
                if produced == stream]

    def consumers_of(self, stream: str) -> List[str]:
        return [name for name, (consumed, _) in self._nodes.items()
                if stream in consumed]

    def produces(self, name: str) -> Optional[str]:
        node = self._nodes.get(name)
        return node[1] if node is not None else None

    def stage_of(self, name: str) -> int:
        """Topological stage: 0 for queries reading only external
        streams, else 1 + the highest stage among the producers of the
        derived streams they read."""
        return self._stages.get(name, 0)

    def edges(self) -> List[Tuple[str, str, str]]:
        """(producer, stream, consumer) triples in registration order."""
        out: List[Tuple[str, str, str]] = []
        for producer, (_, produced) in self._nodes.items():
            if produced is None:
                continue
            for consumer, (consumed, _) in self._nodes.items():
                if produced in consumed:
                    out.append((producer, produced, consumer))
        return out

    def topological_names(self) -> List[str]:
        """Query names ordered by stage, then registration order."""
        return sorted(self._nodes, key=lambda name: self._stages[name])

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _successors(nodes, name: str) -> List[Tuple[str, str]]:
        """(stream, consumer) pairs downstream of ``name`` in ``nodes``."""
        produced = nodes[name][1]
        if produced is None:
            return []
        return [(produced, consumer)
                for consumer, (consumed, _) in nodes.items()
                if produced in consumed]

    @classmethod
    def _find_cycle(cls, nodes, start: str) -> Optional[str]:
        """A rendered cycle path through ``start``, or None.

        The graph was acyclic before the mutation, so any cycle passes
        through the added node — a DFS from ``start`` back to ``start``
        finds it.  The path is rendered through its streams:
        ``a -[s1]-> b -[s2]-> a``; a self-loop is the length-1 case.
        """
        path: List[Tuple[str, str]] = []  # (query, stream to next)
        seen = set()

        def visit(name: str) -> bool:
            for stream, consumer in cls._successors(nodes, name):
                if consumer == start:
                    path.append((name, stream))
                    return True
                if consumer in seen:
                    continue
                seen.add(consumer)
                path.append((name, stream))
                if visit(consumer):
                    return True
                path.pop()
            return False

        if not visit(start):
            return None
        rendered = ""
        for query, stream in path:
            rendered += f"{query} -[{stream}]-> "
        return rendered + start

    def _restage(self) -> None:
        """Recompute stages (longest-path depth; graph is acyclic)."""
        stages: Dict[str, int] = {}

        def stage(name: str) -> int:
            if name in stages:
                return stages[name]
            consumed = self._nodes[name][0]
            upstream = [
                stage(producer)
                for s in consumed
                for producer, (_, produced) in self._nodes.items()
                if produced == s and producer != name
            ]
            stages[name] = 1 + max(upstream) if upstream else 0
            return stages[name]

        for name in self._nodes:
            stage(name)
        self._stages = stages


class QueryRegistry:
    """Holds parsed Seraph queries by their registered name."""

    def __init__(self, plan_cache: Optional[PlanCache] = None):
        self._queries: Dict[str, SeraphQuery] = {}
        self.plan_cache = plan_cache if plan_cache is not None \
            else PlanCache()
        self.dataflow = DataflowGraph()

    def register(self, query: Union[str, SeraphQuery],
                 replace: bool = False) -> SeraphQuery:
        if isinstance(query, str):
            query = parse_seraph(query)
        if query.name in self._queries and not replace:
            raise QueryRegistryError(
                f"query {query.name!r} is already registered"
            )
        # Cycle validation first: a rejected registration must leave the
        # catalog (and the plan cache) untouched.
        self.dataflow.replace(
            query.name, query.stream_names(),
            query.emits_into if query.is_continuous else None,
        )
        if query.name in self._queries:
            self.plan_cache.evict(self._queries[query.name])
        self._queries[query.name] = query
        return query

    def get(self, name: str) -> SeraphQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        return self._queries[name]

    def physical_plan(self, name: str, stats_for):
        """The cached physical plan of a registered query.

        ``stats_for(stream, width)`` supplies planner statistics (a graph
        or :class:`~repro.cypher.planner.GraphStatistics`) per window.
        Raises :class:`~repro.errors.PhysicalPlanError` when the query
        cannot be lowered."""
        return self.plan_cache.plan_for(self.get(name), stats_for)

    def delete(self, name: str) -> SeraphQuery:
        if name not in self._queries:
            raise QueryRegistryError(f"no registered query named {name!r}")
        query = self._queries.pop(name)
        self.plan_cache.evict(query)
        self.dataflow.remove(name)
        return query

    def names(self) -> List[str]:
        return list(self._queries)

    def __contains__(self, name: object) -> bool:
        return name in self._queries

    def __len__(self) -> int:
        return len(self._queries)
