"""Delta-driven incremental MATCH evaluation (Section 6, "avoidable
re-executions").

The engine's per-evaluation window maintenance already knows *exactly*
which stream elements entered and left the window.  This module turns
that knowledge into an incremental evaluation path:

1. :class:`WindowDelta` — the elements a :meth:`_WindowState.advance`
   call added/removed, and the *dirty* node/relationship ids they touch.
2. :class:`QueryDeltaState` — the query's previous assignment set, each
   assignment paired with its *footprint* (every node and relationship
   the embedding traverses, named or anonymous).
3. :func:`evaluate_delta` — discard assignments whose footprint meets a
   dirty id, re-run the matcher anchored on the dirty neighbourhood
   only, merge, and recompute the terminal projection (aggregates and
   all) from the merged assignment set.

Soundness rests on two facts.  First, an embedding's validity depends
only on the merged view of the entities in its footprint: eligibility
(:func:`delta_ineligibility`) rejects every construct that could reach
beyond it (window-bound references, pattern predicates, OPTIONAL MATCH,
multi-clause bodies).  Second, an entity's merged snapshot view can only
change when an element containing it enters or leaves the window — i.e.
when the entity is dirty — because surviving elements keep their
relative union order.  Retained assignments are therefore bit-identical
to what a full re-match would produce, and every *new* embedding must
touch a dirty entity, so anchoring the matcher on the dirty
neighbourhood (radius = the pattern's maximum hop count) finds all of
them.

Queries the analysis cannot cover fall back to full evaluation — the
correctness contract (property-tested bag-equality against
:func:`repro.seraph.semantics.continuous_run`) is unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.cypher import ast as cypher_ast
from repro.cypher.evaluator import QueryEvaluator
from repro.cypher.matcher import Footprint
from repro.cypher.planner import node_anchor_cost, plan_pattern
from repro.graph.model import PropertyGraph
from repro.graph.table import Record, Table
from repro.graph.values import Ternary
from repro.seraph.ast import SeraphMatch, SeraphQuery
from repro.seraph.semantics import terminal_clause
from repro.stream.stream import StreamElement
from repro.stream.timeline import TimeInterval
from repro.stream.tvt import WIN_END, WIN_START


@dataclass(frozen=True, slots=True)
class WindowDelta:
    """What one window advance changed: elements in, elements out."""

    added: Tuple[StreamElement, ...] = ()
    removed: Tuple[StreamElement, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def dirty_entities(self) -> Footprint:
        """Every node/relationship id an added or removed element touches.

        These are the only entities whose merged snapshot view can differ
        from the previous evaluation's.
        """
        dirty: Set[Tuple[str, int]] = set()
        for element in self.added + self.removed:
            graph = element.graph
            dirty.update(("n", node_id) for node_id in graph.nodes)
            dirty.update(("r", rel_id) for rel_id in graph.relationships)
        return frozenset(dirty)

    def seed_node_ids(self) -> Set[int]:
        """Node ids to grow the dirty neighbourhood from (includes the
        endpoints of dirty relationships)."""
        seeds: Set[int] = set()
        for element in self.added + self.removed:
            graph = element.graph
            seeds.update(graph.nodes)
            for rel in graph.relationships.values():
                seeds.add(rel.src)
                seeds.add(rel.trg)
        return seeds


@dataclass(slots=True)
class DeltaStats:
    """Outcome of one :func:`evaluate_delta` call."""

    full_refresh: bool
    retained: int
    recomputed: int
    #: Seconds the vectorized pruner spent building candidate sets during
    #: this evaluation (0.0 with vectorization off or on memo hits) — the
    #: engine's ``vectorize`` observability stage.
    vectorize_seconds: float = 0.0


@dataclass(slots=True)
class QueryDeltaState:
    """The previous assignment set of one delta-eligible query.

    ``assignments`` pairs each matched record (projected to the pattern's
    free variables) with its embedding footprint.  ``valid`` is False
    until the first (full) refresh and whenever the query was evaluated
    outside the delta path.
    """

    assignments: List[Tuple[Record, Footprint]] = field(default_factory=list)
    fields: FrozenSet[str] = frozenset()
    valid: bool = False

    def invalidate(self) -> None:
        self.valid = False
        self.assignments = []


def _contains_type(obj: object, target: type) -> bool:
    """Conservative AST walk: does any sub-value instantiate ``target``?"""
    if isinstance(obj, target):
        return True
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return any(
            _contains_type(getattr(obj, f.name), target)
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, (tuple, list)):
        return any(_contains_type(item, target) for item in obj)
    return False


def delta_ineligibility(query: SeraphQuery) -> Optional[str]:
    """Why this query cannot take the delta path (None when it can).

    The conditions pin down exactly the fragment for which an
    assignment's validity is a function of its footprint alone and the
    terminal projection can be recomputed from the assignment bag.
    """
    if not query.is_continuous:
        return "RETURN-terminal query (evaluates once)"
    if query.references_window_bounds():
        return "references win_start/win_end"
    if len(query.body) != 1 or not isinstance(query.body[0], SeraphMatch):
        return "body is not a single MATCH clause"
    clause = query.body[0].match
    if clause.optional:
        return "OPTIONAL MATCH"
    if len(clause.pattern.paths) != 1:
        return "comma-separated multi-path pattern"
    path = clause.pattern.paths[0]
    if path.shortest is not None:
        return f"{path.shortest} (path validity is graph-global)"
    for rel in path.relationships:
        if rel.var_length is not None and rel.var_length[1] is None:
            return "unbounded variable-length relationship"
    terminal = terminal_clause(query)
    if terminal.skip is not None or terminal.limit is not None:
        return "SKIP/LIMIT terminal (depends on production order)"
    if _contains_type((clause, terminal), cypher_ast.PatternPredicate):
        return "pattern predicate (graph-wide existence check)"
    return None


def pattern_hops(path: cypher_ast.PathPattern) -> int:
    """Maximum number of relationships an embedding of ``path`` crosses.

    Only called on delta-eligible patterns, so every variable-length
    bound is finite.
    """
    hops = 0
    for rel in path.relationships:
        if rel.var_length is None:
            hops += 1
        else:
            high = rel.var_length[1]
            if high is None:
                raise ValueError("unbounded pattern is not delta-eligible")
            hops += high
    return hops


def dirty_neighborhood(
    graph: PropertyGraph, seeds: Set[int], hops: int
) -> Set[int]:
    """Node ids within ``hops`` undirected hops of any seed node.

    Any embedding that touches a dirty entity starts within this set:
    its walk has at most ``hops`` edges and passes through a seed, so the
    start node is at most ``hops`` graph edges away from it.
    """
    seen = {node_id for node_id in seeds if node_id in graph.nodes}
    frontier = set(seen)
    for _ in range(hops):
        if not frontier:
            break
        grown: Set[int] = set()
        for node_id in frontier:
            for rel in graph.incident(node_id):
                other = rel.other_end(node_id)
                if other not in seen:
                    seen.add(other)
                    grown.add(other)
        frontier = grown
    return seen


def evaluate_delta(
    query: SeraphQuery,
    state: QueryDeltaState,
    graph: PropertyGraph,
    delta: WindowDelta,
    interval: TimeInterval,
    expr_cache: Optional[dict] = None,
    span=None,
    plan=None,
    vectorized: bool = False,
) -> Tuple[Table, DeltaStats]:
    """One evaluation through the incremental path.

    Maintains ``state`` (the assignment set) and returns the query's
    output table plus bookkeeping for the engine's counters.  The caller
    guarantees :func:`delta_ineligibility` returned None for ``query``.

    ``span`` is an optional open trace span (:mod:`repro.obs.trace`);
    the chosen path (full refresh / no-op / anchored re-match) and its
    retain/recompute counts are annotated onto it.

    ``plan`` is an optional compiled
    :class:`~repro.cypher.physical.PhysicalPlan` for ``query``; when
    given, its already-planned pattern (join order, orientation, seeks
    baked in at compile time) replaces the per-evaluation
    :func:`~repro.cypher.planner.plan_pattern` call.

    ``vectorized`` routes the matcher through the snapshot's shared
    :class:`~repro.cypher.vectorized.CandidatePruner`.  The anchored
    re-match composes with it naturally: the matcher enumerates the
    pattern's *pruned* start candidates and the dirty neighbourhood
    arrives as ``first_candidates``, so each re-match start is one
    dirty-set membership probe over the already-pruned ordered array —
    the intersection of the two supersets, never a full scan of either.
    """
    base_scope = {WIN_START: interval.start, WIN_END: interval.end}
    evaluator = QueryEvaluator(graph, base_scope=base_scope,
                               compile_cache=expr_cache,
                               vectorized=vectorized)
    pruner = evaluator.matcher.pruner
    pruner_seconds = pruner.build_seconds if pruner is not None else 0.0
    clause = query.body[0].match
    out_fields = frozenset(clause.pattern.free_variables())
    if plan is not None:
        pattern = plan.stages[0].pattern
    else:
        pattern = plan_pattern(
            clause.pattern, graph, frozenset(base_scope)
        )

    where_fn = (
        evaluator._compiled(clause.where) if clause.where is not None else None
    )

    def matches(first_candidates=None):
        found: List[Tuple[Record, Footprint]] = []
        for bindings, footprint in evaluator.matcher.match_pattern_traced(
            pattern, base_scope, first_candidates=first_candidates
        ):
            if where_fn is not None:
                scope = dict(base_scope)
                scope.update(bindings)
                if Ternary.of(
                    where_fn(evaluator.evaluator, scope)
                ) is not Ternary.TRUE:
                    continue
            found.append((Record(bindings).project(out_fields), footprint))
        return found

    if not state.valid:
        state.assignments = matches()
        state.fields = out_fields
        state.valid = True
        stats = DeltaStats(
            full_refresh=True, retained=0, recomputed=len(state.assignments)
        )
    elif delta.is_empty:
        stats = DeltaStats(
            full_refresh=False, retained=len(state.assignments), recomputed=0
        )
    else:
        dirty = delta.dirty_entities()
        retained = [
            assignment
            for assignment in state.assignments
            if not (assignment[1] & dirty)
        ]
        candidates = dirty_neighborhood(
            graph, delta.seed_node_ids(), pattern_hops(pattern.paths[0])
        )
        anchor_estimate = node_anchor_cost(
            pattern.paths[0].nodes[0], graph, frozenset(base_scope)
        )
        if len(candidates) >= anchor_estimate:
            # The anchored walk would start from at least as many nodes
            # as a fresh one — recompute the assignment set outright.
            state.assignments = matches()
            stats = DeltaStats(
                full_refresh=True,
                retained=0,
                recomputed=len(state.assignments),
            )
        else:
            fresh = [
                (record, footprint)
                for record, footprint in matches(first_candidates=candidates)
                if footprint & dirty
            ]
            state.assignments = retained + fresh
            stats = DeltaStats(
                full_refresh=False,
                retained=len(retained),
                recomputed=len(fresh),
            )
    if pruner is not None:
        stats.vectorize_seconds = pruner.build_seconds - pruner_seconds
    if span is not None:
        if stats.full_refresh:
            path = "full_refresh"
        elif stats.recomputed:
            path = "anchored_rematch"
        else:
            path = "retained"
        span.annotate(
            path=path,
            retained=stats.retained,
            recomputed=stats.recomputed,
            dirty_seeds=len(delta.seed_node_ids()) if not delta.is_empty
            else 0,
        )
    table = Table(
        (record for record, _footprint in state.assignments),
        fields=state.fields,
    )
    result = evaluator.apply_clause(terminal_clause(query), table)
    return result, stats
