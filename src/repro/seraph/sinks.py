"""Result sinks for the continuous engine.

Every evaluation of a registered query produces an :class:`Emission`; the
query's sink decides what to do with it (collect, call back, print).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TextIO

from repro.graph.temporal import TimeInstant, format_hhmm
from repro.stream.tvt import TimeAnnotatedTable


@dataclass(frozen=True)
class Emission:
    """One reported result of one evaluation of one registered query."""

    query_name: str
    instant: TimeInstant
    table: TimeAnnotatedTable

    def is_empty(self) -> bool:
        return len(self.table) == 0

    def render(self, columns: Optional[List[str]] = None) -> str:
        header = f"== {self.query_name} @ {format_hhmm(self.instant)} =="
        return header + "\n" + self.table.render(columns)


class Sink:
    """Base class: receives every emission of its query."""

    def receive(self, emission: Emission) -> None:
        raise NotImplementedError


class CollectingSink(Sink):
    """Stores all emissions; the default sink."""

    def __init__(self):
        self.emissions: List[Emission] = []

    def receive(self, emission: Emission) -> None:
        self.emissions.append(emission)

    def non_empty(self) -> List[Emission]:
        return [emission for emission in self.emissions if not emission.is_empty()]

    def at(self, instant: TimeInstant) -> Optional[Emission]:
        for emission in self.emissions:
            if emission.instant == instant:
                return emission
        return None

    def __len__(self) -> int:
        return len(self.emissions)


class CallbackSink(Sink):
    """Invokes a user callback per emission."""

    def __init__(self, callback: Callable[[Emission], None],
                 skip_empty: bool = True):
        self._callback = callback
        self._skip_empty = skip_empty

    def receive(self, emission: Emission) -> None:
        if self._skip_empty and emission.is_empty():
            return
        self._callback(emission)


class JsonlSink(Sink):
    """Serializes emissions as JSON lines (one object per emission).

    The format is replayable tooling-side: query name, evaluation
    instant, window bounds, and the rows (graph entities reduced to their
    ids).  Pass a path or any writable text stream.
    """

    def __init__(self, target, skip_empty: bool = True):
        self._owns_handle = isinstance(target, str)
        self._handle = open(target, "w", encoding="utf-8") \
            if self._owns_handle else target
        self._skip_empty = skip_empty

    def receive(self, emission: Emission) -> None:
        import json

        if self._skip_empty and emission.is_empty():
            return
        document = {
            "query": emission.query_name,
            "instant": emission.instant,
            "win_start": emission.table.win_start,
            "win_end": emission.table.win_end,
            "rows": [
                {name: _plain_value(record[name]) for name in record}
                for record in emission.table
            ],
        }
        self._handle.write(json.dumps(document, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _plain_value(value):
    """Reduce graph entities to JSON-serializable shapes."""
    from repro.graph.model import Node, Path, Relationship

    if isinstance(value, Node):
        return {"node": value.id}
    if isinstance(value, Relationship):
        return {"relationship": value.id}
    if isinstance(value, Path):
        return {"path": [rel.id for rel in value.relationships]}
    if isinstance(value, list):
        return [_plain_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _plain_value(item) for key, item in value.items()}
    return value


class PrintingSink(Sink):
    """Renders emissions in the paper's table style to a text stream."""

    def __init__(self, out: Optional[TextIO] = None, skip_empty: bool = True,
                 columns: Optional[List[str]] = None):
        import sys

        self._out = out or sys.stdout
        self._skip_empty = skip_empty
        self._columns = columns

    def receive(self, emission: Emission) -> None:
        if self._skip_empty and emission.is_empty():
            return
        print(emission.render(self._columns), file=self._out)
