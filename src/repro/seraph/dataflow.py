"""Materializing ``EMIT ... INTO`` emissions back into graph elements.

The dataflow tentpole (docs/DATAFLOW.md): a producer query's emitted
rows become property-graph stream elements on a **named derived stream**
that downstream registered queries consume with ``FROM STREAM``.  The
mapping is CONSTRUCT-style and reuses the updating-Cypher machinery
(:mod:`repro.cypher.updating`): every emitted row is applied as a
``MERGE (r:<stream> {col: $col, ...})`` against a persistent per-stream
:class:`~repro.graph.store.GraphStore`, so

* repeated rows (across evaluations, or across window overlaps) merge
  into **one** immutable node — the same cable keeps the same id, which
  is exactly the UNA-union contract (Definition 5.4) window snapshots
  rely on;
* node identity is deterministic: ids are allocated sequentially from
  :data:`DERIVED_NODE_ID_BASE` in first-materialization order, so the
  fused pipeline and a hand-composed multi-engine run produce
  byte-identical elements.

The materializer is deliberately standalone — tests and benchmarks use
it to glue separately-run engines together and pin that the in-engine
pipeline emits the same bytes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cypher import ast as cypher_ast
from repro.cypher.updating import UpdatingQueryEvaluator
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.model import Node, Path, PropertyGraph, Relationship
from repro.graph.store import GraphStore
from repro.graph.table import Table
from repro.graph.values import NULL
from repro.seraph.sinks import Emission
from repro.stream.stream import StreamElement

#: Derived-stream node ids start far above every generator/use-case id
#: range so UNA-union never collides a materialized row with a node of
#: the raw stream or a static graph.
DERIVED_NODE_ID_BASE = 1_000_000_000


def _stream_value(value: Any) -> Any:
    """An emitted value as a storable node property.

    Graph entities are replaced by their identifiers (the same rule the
    JSONL sink applies): a node becomes its id, a relationship its id, a
    path the list of its relationship ids.  Scalars and containers pass
    through.
    """
    if isinstance(value, Node):
        return value.id
    if isinstance(value, Relationship):
        return value.id
    if isinstance(value, Path):
        return [rel.id for rel in value.relationships]
    if isinstance(value, (list, tuple)):
        return [_stream_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _stream_value(item) for key, item in value.items()}
    return value


class StreamMaterializer:
    """Turns one query's emissions into elements of a derived stream.

    One instance per derived stream; the engine owns one for every
    ``INTO`` target and feeds it every (post-report-policy) emission of
    the stream's producers, in evaluation order.  ``elements`` — the
    number of stream elements materialized so far — is the stream's
    **cursor**: it survives checkpoints and is what the service lists
    per tenant.
    """

    def __init__(self, stream: str):
        self.stream = stream
        self.store = GraphStore()
        # Sequential allocation from the derived-id base keeps node
        # identity deterministic and collision-free (module docstring).
        self.store._next_node_id = DERIVED_NODE_ID_BASE
        self.elements = 0
        self.rows = 0
        self._merges: Dict[Tuple[str, ...], cypher_ast.Merge] = {}

    def _merge_for(self, columns: Tuple[str, ...]) -> cypher_ast.Merge:
        merge = self._merges.get(columns)
        if merge is None:
            node = cypher_ast.NodePattern(
                variable="r",
                labels=(self.stream,),
                properties=tuple(
                    (column, cypher_ast.Parameter(column))
                    for column in columns
                ),
            )
            merge = cypher_ast.Merge(path=cypher_ast.PathPattern(nodes=(node,)))
            self._merges[columns] = merge
        return merge

    def materialize(self, emission: Emission) -> Optional[StreamElement]:
        """The stream element for one emission, or None when empty.

        Empty emissions produce no element (matching the constructing
        sink's default): an empty window downstream stays empty instead
        of receiving blank configuration events.
        """
        if emission.is_empty():
            return None
        nodes: List[Node] = []
        seen: set = set()
        for record in emission.table.table:
            parameters = {
                column: _stream_value(record[column])
                for column in sorted(record)
                if record[column] is not NULL
            }
            if not parameters:
                continue  # an all-null row carries no identity to merge on
            columns = tuple(sorted(parameters))
            evaluator = UpdatingQueryEvaluator(self.store,
                                               parameters=parameters)
            bound = evaluator.apply_clause(self._merge_for(columns),
                                           Table.unit())
            self.rows += 1
            for out in bound:
                node = out["r"]
                if node.id not in seen:
                    seen.add(node.id)
                    nodes.append(node)
        if not nodes:
            return None
        self.elements += 1
        # Re-read the merged nodes from the store snapshot so the element
        # carries the canonical (deduplicated) property values.
        snapshot = self.store.graph()
        graph = PropertyGraph.of(
            [snapshot.node(node.id) for node in nodes], []
        )
        return StreamElement(graph=graph, instant=emission.instant)

    # -- checkpointing ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Checkpoint state: cursor counters plus the merge store."""
        return {
            "stream": self.stream,
            "elements": self.elements,
            "rows": self.rows,
            "next_node_id": self.store._next_node_id,
            "graph": graph_to_dict(self.store.graph()),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamMaterializer":
        materializer = cls(str(data["stream"]))
        materializer.elements = int(data.get("elements", 0))
        materializer.rows = int(data.get("rows", 0))
        materializer.store.load(graph_from_dict(data["graph"]))
        materializer.store._next_node_id = max(
            materializer.store._next_node_id,
            int(data.get("next_node_id", DERIVED_NODE_ID_BASE)),
            DERIVED_NODE_ID_BASE,
        )
        return materializer
