"""Seraph: the continuous query language and engine (the paper's core)."""

from repro.seraph.ast import DEFAULT_STREAM, Emit, SeraphMatch, SeraphQuery
from repro.seraph.construct import (
    ConstructingSink,
    GraphTemplate,
    NodeSpec,
    RelationshipSpec,
)
from repro.seraph.dataflow import DERIVED_NODE_ID_BASE, StreamMaterializer
from repro.seraph.engine import RegisteredQuery, SeraphEngine
from repro.seraph.explain import explain, explain_analyze, explain_dataflow
from repro.seraph.parser import SeraphParser, parse_seraph
from repro.seraph.registry import DataflowGraph, QueryRegistry
from repro.seraph.semantics import continuous_run, evaluate_at, execute_body
from repro.seraph.sinks import CallbackSink, CollectingSink, Emission, PrintingSink

__all__ = [
    "CallbackSink",
    "CollectingSink",
    "ConstructingSink",
    "DEFAULT_STREAM",
    "DERIVED_NODE_ID_BASE",
    "DataflowGraph",
    "Emission",
    "Emit",
    "GraphTemplate",
    "NodeSpec",
    "PrintingSink",
    "QueryRegistry",
    "RegisteredQuery",
    "RelationshipSpec",
    "SeraphEngine",
    "SeraphMatch",
    "SeraphParser",
    "SeraphQuery",
    "StreamMaterializer",
    "continuous_run",
    "evaluate_at",
    "execute_body",
    "explain",
    "explain_analyze",
    "explain_dataflow",
    "parse_seraph",
]
