"""Denotational continuous-evaluation semantics (Definitions 5.8–5.11).

This module is the *reference implementation*: it evaluates a Seraph query
at one instant by literally following the paper — extract the active
substream, union it into a snapshot graph (Definition 5.5), and run the
core-Cypher pipeline over it (snapshot reducibility, Definition 5.8).  The
incremental engine in :mod:`repro.seraph.engine` must agree with it;
property tests assert that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cypher import ast as cypher_ast
from repro.cypher.evaluator import QueryEvaluator
from repro.graph.model import PropertyGraph
from repro.graph.table import Table
from repro.graph.temporal import TimeInstant
from repro.seraph.ast import Emit, SeraphMatch, SeraphQuery
from repro.stream.report import ReportState
from repro.stream.snapshot import snapshot_graph
from repro.stream.stream import PropertyGraphStream
from repro.stream.timeline import TimeInterval
from repro.stream.tvt import WIN_END, WIN_START, TimeAnnotatedTable
from repro.stream.window import ActiveSubstreamPolicy, WindowConfig


def window_config(query: SeraphQuery, width: int) -> WindowConfig:
    """The (ω₀, α, β) triple for one WITHIN width of a query."""
    slide = query.slide if query.slide > 0 else width
    return WindowConfig(start=query.starting_at, width=width, slide=slide)


def reported_interval(
    query: SeraphQuery,
    instant: TimeInstant,
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
) -> TimeInterval:
    """The win_start/win_end annotation for an evaluation at ``instant``.

    Uses the widest WITHIN of the query (DESIGN.md §4.4); under TRAILING
    this is ``[ω − α_max, ω)`` as the paper's Tables 5/6 print.
    """
    config = window_config(query, query.max_within)
    window = config.active_window(instant, policy)
    if window is None:
        # Before ω₀ under the formal policy: an empty interval at ω.
        return TimeInterval(instant, instant)
    return window


def terminal_clause(query: SeraphQuery) -> cypher_ast.Return:
    """The pipeline's terminal projection: RETURN, or EMIT read as one."""
    if query.final_return is not None:
        return query.final_return
    return cypher_ast.Return(items=query.emit.items, star=query.emit.star)


def execute_body(
    query: SeraphQuery,
    graph_for: Callable[[str, int], PropertyGraph],
    interval: TimeInterval,
    expr_cache: Optional[dict] = None,
    vectorized: bool = False,
) -> Table:
    """Run the clause pipeline with per-MATCH snapshot graphs.

    ``graph_for(stream, width)`` supplies the snapshot graph for each
    (stream, WITHIN width) pair; the reserved ``win_start``/``win_end``
    names are injected into every expression scope (Definition 5.6).
    ``expr_cache`` (optional) is a compiled-expression cache shared across
    evaluations of the same query — see
    :func:`repro.cypher.expressions.compile_expression`.
    ``vectorized`` enables set-at-a-time candidate pruning
    (docs/VECTORIZED.md; results are byte-identical either way).
    """
    base_scope = {WIN_START: interval.start, WIN_END: interval.end}
    evaluators: Dict[tuple, QueryEvaluator] = {}

    def evaluator_for(stream: str, width: int) -> QueryEvaluator:
        key = (stream, width)
        if key not in evaluators:
            evaluators[key] = QueryEvaluator(
                graph_for(stream, width),
                base_scope=base_scope,
                compile_cache=expr_cache,
                vectorized=vectorized,
            )
        return evaluators[key]

    default_key = query.window_keys()[-1]
    table = Table.unit()
    for clause in query.body:
        if isinstance(clause, SeraphMatch):
            default_key = (clause.stream_name, clause.within)
            table = evaluator_for(*default_key).apply_clause(clause.match, table)
        else:
            table = evaluator_for(*default_key).apply_clause(clause, table)
    return evaluator_for(*default_key).apply_clause(terminal_clause(query), table)


StreamsLike = "PropertyGraphStream | Dict[str, PropertyGraphStream]"


def _as_stream_map(streams) -> Dict[str, PropertyGraphStream]:
    from repro.seraph.ast import DEFAULT_STREAM

    if isinstance(streams, PropertyGraphStream):
        return {DEFAULT_STREAM: streams}
    return dict(streams)


def evaluate_at(
    query: SeraphQuery,
    streams,
    instant: TimeInstant,
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
    static_graph: Optional[PropertyGraph] = None,
) -> TimeAnnotatedTable:
    """One evaluation by the book: ``CQ(S)@ω = Q(snapshot(S, ω))``.

    ``streams`` is a single :class:`PropertyGraphStream` (bound to the
    default stream) or a name→stream mapping for multi-stream queries.
    ``static_graph`` (future work iii) is unioned into every snapshot.
    Report policies are *not* applied here — this is the full current
    answer (the SNAPSHOT view); :func:`continuous_run` layers policies.
    """
    from repro.graph.union import union as graph_union

    stream_map = _as_stream_map(streams)

    def graph_for(stream_name: str, width: int) -> PropertyGraph:
        config = window_config(query, width)
        stream = stream_map.get(stream_name)
        if stream is None:
            elements = []
        else:
            elements = config.active_substream(stream, instant, policy)
        graph = snapshot_graph(elements)
        if static_graph is not None:
            graph = graph_union(static_graph, graph)
        return graph

    interval = reported_interval(query, instant, policy)
    table = execute_body(query, graph_for, interval)
    return TimeAnnotatedTable(table=table, interval=interval)


def evaluation_instants(
    query: SeraphQuery, until: TimeInstant
) -> List[TimeInstant]:
    """ET ∩ [ω₀, until] (Definition 5.10)."""
    config = window_config(query, query.max_within)
    return list(config.evaluation_instants(until))


def continuous_run(
    query: SeraphQuery,
    streams,
    until: TimeInstant,
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
    static_graph: Optional[PropertyGraph] = None,
) -> List[TimeAnnotatedTable]:
    """The denotational continuous run: evaluate at every ET instant up to
    ``until`` and apply the query's report policy.

    For a RETURN-terminal query this produces exactly one entry (the first
    evaluation), per Section 5.3.
    """
    if not query.is_continuous:
        first = query.starting_at
        if first > until:
            return []
        return [evaluate_at(query, streams, first, policy, static_graph)]
    report = ReportState(query.emit.policy)
    out: List[TimeAnnotatedTable] = []
    for instant in evaluation_instants(query, until):
        full = evaluate_at(query, streams, instant, policy, static_graph)
        emitted = report.apply(full.table)
        out.append(TimeAnnotatedTable(table=emitted, interval=full.interval))
    return out
