"""Run instrumentation: per-evaluation latency and output statistics.

Wraps a :class:`~repro.seraph.engine.SeraphEngine` run and records, per
evaluation, wall-clock latency, rows emitted, and whether the engine's
unchanged-window reuse fired — the measurements a systems evaluation of
the engine reports (EXPERIMENTS.md's P-series).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import MetricsError
from repro.graph.temporal import TimeInstant
from repro.obs import format as obs_format
from repro.seraph.engine import SeraphEngine
from repro.seraph.sinks import Emission
from repro.stream.stream import StreamElement


@dataclass
class ResilienceMetrics:
    """Counters surfaced by the fault-tolerant runtime layer.

    One instance is shared by all components of a
    :class:`repro.runtime.ResilientEngine` (ingestion guard, reorder
    buffer, dead-letter queue, resilient sinks, checkpointing), so a
    single object answers "what did the resilience layer absorb?".
    """

    ingested: int = 0            # elements accepted into the engine
    dead_lettered: int = 0       # entries appended to the dead-letter queue
    poison_rejected: int = 0     # malformed payloads caught by the guard
    poison_skipped: int = 0      # poison dropped silently (SKIP policy)
    reordered: int = 0           # elements that arrived out of order but
    #                              were re-sequenced within the lateness bound
    late_events: int = 0         # elements beyond the allowed lateness
    late_dropped: int = 0        # late elements dropped (DROP/DEAD_LETTER)
    sink_deliveries: int = 0     # emissions successfully delivered
    sink_failures: int = 0       # individual failed delivery attempts
    retried: int = 0             # delivery retries performed
    short_circuited: int = 0     # deliveries refused by an open breaker
    breaker_opens: int = 0       # closed/half-open -> open transitions
    fallback_deliveries: int = 0 # emissions routed to the fallback sink
    checkpoints: int = 0         # checkpoints taken
    restores: int = 0            # engines restored from a checkpoint

    def as_dict(self) -> Dict[str, int]:
        return {
            name: getattr(self, name)
            for name in (
                "ingested", "dead_lettered", "poison_rejected",
                "poison_skipped", "reordered", "late_events", "late_dropped",
                "sink_deliveries", "sink_failures", "retried",
                "short_circuited", "breaker_opens", "fallback_deliveries",
                "checkpoints", "restores",
            )
        }

    def render(self) -> str:
        """One-line human summary of the non-zero counters."""
        shown = {k: v for k, v in self.as_dict().items() if v}
        return obs_format.render_counters(
            "resilience", shown, empty="all counters zero"
        )


@dataclass
class ParallelMetrics:
    """Counters surfaced by the parallel execution layer.

    One instance is owned by a
    :class:`repro.runtime.parallel.ParallelEngine` (and by each
    :class:`repro.runtime.parallel.ShardedEngine` replica set); it
    answers "did parallelism fire, and what did the workers do?".
    """

    batches: int = 0                 # advance_to passes with ≥1 due query
    offloaded_groups: int = 0        # window-signature groups sent to workers
    offloaded_evaluations: int = 0   # evaluations computed in a worker
    inline_evaluations: int = 0      # full evaluations computed in-parent
    scheduler_serial: int = 0        # scheduler verdicts: stay serial
    scheduler_parallel: int = 0      # scheduler verdicts: offload
    max_queue_depth: int = 0         # most in-flight worker tasks at once
    worker_seconds: Dict[int, float] = field(default_factory=dict)
    worker_tasks: Dict[int, int] = field(default_factory=dict)

    def observe_task(self, worker_id: int, seconds: float) -> None:
        """Record one completed worker task (keyed by worker pid)."""
        self.worker_seconds[worker_id] = (
            self.worker_seconds.get(worker_id, 0.0) + seconds
        )
        self.worker_tasks[worker_id] = self.worker_tasks.get(worker_id, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "batches": self.batches,
            "offloaded_groups": self.offloaded_groups,
            "offloaded_evaluations": self.offloaded_evaluations,
            "inline_evaluations": self.inline_evaluations,
            "scheduler_serial": self.scheduler_serial,
            "scheduler_parallel": self.scheduler_parallel,
            "max_queue_depth": self.max_queue_depth,
            "workers": {
                str(worker_id): {
                    "tasks": self.worker_tasks.get(worker_id, 0),
                    "busy_seconds": round(seconds, 6),
                }
                for worker_id, seconds in sorted(self.worker_seconds.items())
            },
        }

    def render(self) -> str:
        """One-line human summary (nested worker stats flattened)."""
        return obs_format.render_counters(
            "parallel", self.as_dict(), empty="no batches"
        )


@dataclass(frozen=True)
class EvaluationSample:
    """One evaluation's measurements."""

    query_name: str
    instant: TimeInstant
    latency_seconds: float
    rows_emitted: int
    reused: bool
    delta: bool = False  # served by the incremental (delta) path


@dataclass
class RunReport:
    """Aggregated measurements of one instrumented run."""

    samples: List[EvaluationSample] = field(default_factory=list)
    ingested_elements: int = 0
    wall_seconds: float = 0.0

    @property
    def evaluations(self) -> int:
        return len(self.samples)

    @property
    def total_rows(self) -> int:
        return sum(sample.rows_emitted for sample in self.samples)

    @property
    def reuse_ratio(self) -> float:
        if not self.samples:
            return 0.0
        return sum(sample.reused for sample in self.samples) / len(
            self.samples
        )

    @property
    def delta_ratio(self) -> float:
        """Fraction of evaluations served by the incremental delta path
        (full evaluations avoided)."""
        if not self.samples:
            return 0.0
        return sum(sample.delta for sample in self.samples) / len(
            self.samples
        )

    def latency_percentile(self, percentile: float) -> float:
        """Nearest-rank latency percentile in seconds.

        A percentile outside (0, 1] raises
        :class:`~repro.errors.MetricsError`; an empty report yields 0.0
        (no samples, no latency).
        """
        if not 0.0 < percentile <= 1.0:
            raise MetricsError(
                f"percentile must be in (0, 1], got {percentile!r}"
            )
        if not self.samples:
            return 0.0
        ordered = sorted(sample.latency_seconds for sample in self.samples)
        rank = max(0, int(percentile * len(ordered) + 0.999999) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def mean_latency(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.latency_seconds for s in self.samples) / len(self.samples)

    def by_query(self) -> Dict[str, List[EvaluationSample]]:
        grouped: Dict[str, List[EvaluationSample]] = {}
        for sample in self.samples:
            grouped.setdefault(sample.query_name, []).append(sample)
        return grouped

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (feeds ``MetricsRegistry.absorb("run", ...)``)."""
        return {
            "evaluations": self.evaluations,
            "ingested_elements": self.ingested_elements,
            "wall_seconds": self.wall_seconds,
            "mean_latency": self.mean_latency,
            "p95_latency": self.latency_percentile(0.95),
            "total_rows": self.total_rows,
            "reuse_ratio": self.reuse_ratio,
            "delta_ratio": self.delta_ratio,
        }

    def render(self) -> str:
        """One-paragraph human summary."""
        return obs_format.render_run_report(
            evaluations=self.evaluations,
            ingested_elements=self.ingested_elements,
            wall_seconds=self.wall_seconds,
            mean_latency=self.mean_latency,
            p95_latency=self.latency_percentile(0.95),
            total_rows=self.total_rows,
            reuse_ratio=self.reuse_ratio,
            delta_ratio=self.delta_ratio,
        )


def instrumented_run(
    engine: SeraphEngine,
    elements: Iterable[StreamElement],
    until: Optional[TimeInstant] = None,
    stream: Optional[str] = None,
) -> RunReport:
    """Run a stream through an engine, sampling every evaluation.

    Queries must already be registered.  Latency is measured around each
    ``advance_to`` step and attributed to the emissions it produced
    (evenly, when one step fires several evaluations).
    """
    from repro.seraph.ast import DEFAULT_STREAM

    report = RunReport()
    reuse_before = {
        name: engine.registered(name).reused_evaluations
        for name in engine.query_names
    }
    delta_before = {
        name: engine.registered(name).delta_evaluations
        for name in engine.query_names
    }

    def record(emissions: List[Emission], elapsed: float) -> None:
        if not emissions:
            return
        share = elapsed / len(emissions)
        # A single advance_to step may fire several evaluations per
        # query; distribute the observed per-path counter deltas over
        # them.
        reuse_budget: Dict[str, int] = {}
        delta_budget: Dict[str, int] = {}
        for name in engine.query_names:
            registered = engine.registered(name)
            now = registered.reused_evaluations
            reuse_budget[name] = now - reuse_before.get(name, 0)
            reuse_before[name] = now
            now = registered.delta_evaluations
            delta_budget[name] = now - delta_before.get(name, 0)
            delta_before[name] = now
        for emission in emissions:
            was_reused = reuse_budget.get(emission.query_name, 0) > 0
            if was_reused:
                reuse_budget[emission.query_name] -= 1
            was_delta = delta_budget.get(emission.query_name, 0) > 0
            if was_delta:
                delta_budget[emission.query_name] -= 1
            report.samples.append(
                EvaluationSample(
                    query_name=emission.query_name,
                    instant=emission.instant,
                    latency_seconds=share,
                    rows_emitted=len(emission.table),
                    reused=was_reused,
                    delta=was_delta,
                )
            )

    stream_name = stream if stream is not None else DEFAULT_STREAM
    run_start = time.perf_counter()
    last: Optional[TimeInstant] = None
    for element in elements:
        step_start = time.perf_counter()
        emissions = engine.advance_to(element.instant - 1)
        record(emissions, time.perf_counter() - step_start)
        engine.ingest_element(element, stream_name)
        report.ingested_elements += 1
        last = element.instant
    final = until if until is not None else last
    if final is not None:
        step_start = time.perf_counter()
        emissions = engine.advance_to(final)
        record(emissions, time.perf_counter() - step_start)
    report.wall_seconds = time.perf_counter() - run_start
    return report
