"""The one front door: :class:`EngineConfig` + :func:`build_engine`.

The engine stack grew three construction idioms — ``SeraphEngine(...)``,
the ``SeraphEngine(parallel=N)`` factory hook, and hand-wrapping in
:class:`~repro.runtime.ResilientEngine` — each threading its own metrics
object.  :func:`build_engine` replaces all of them: one declarative
config selects the layers (serial / parallel core, optional resilient
wrapper, optional observability bundle), and every layer shares the same
:class:`~repro.obs.Observability` (tracer + metrics registry)::

    from repro import EngineConfig, build_engine

    engine = build_engine(EngineConfig(
        delta_eval=True,
        parallel_workers=4,
        resilient=True,
        allowed_lateness=2,
        observability=True,
    ))
    engine.register(QUERY_TEXT)
    engine.run_stream(elements)
    print(engine.unified_status()["obs"]["metrics"])

The legacy construction idioms (``SeraphEngine(parallel=N)``,
``ResilientEngine(**engine_kwargs)``) finished their deprecation cycle
and now hard-error with a migration message: this module is the single
front door, and the continuous-query service (:mod:`repro.service`)
builds exclusively on it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Callable, Optional, Union

from repro.errors import EngineError
from repro.graph.model import PropertyGraph
from repro.obs import NOOP_OBS, Observability
from repro.runtime.engine import ResilientEngine
from repro.runtime.faults import ChaosConfig
from repro.runtime.policies import FaultPolicy
from repro.runtime.resilient_sink import RetryPolicy
from repro.seraph.engine import SeraphEngine
from repro.stream.window import ActiveSubstreamPolicy


def _env_bool(raw: str) -> bool:
    """Shared boolean parse for every ``REPRO_*`` toggle (same falsy set
    as the legacy ``REPRO_VECTORIZED`` handling)."""
    return raw.strip().lower() not in {"", "0", "false", "no", "off"}


#: Environment variable -> (EngineConfig field, parser).  The complete
#: environment surface of the engine front door; resolved in one place
#: by :meth:`EngineConfig.from_env` (precedence: explicit arg > env >
#: default — see the table in docs/API.md).
ENV_KNOBS = {
    "REPRO_GRAPH_BACKEND": ("graph_backend", str),
    "REPRO_VECTORIZED": ("vectorized", _env_bool),
    "REPRO_DELTA_EVAL": ("delta_eval", _env_bool),
    "REPRO_PHYSICAL_PLANS": ("physical_plans", _env_bool),
    "REPRO_PARALLEL_WORKERS": ("parallel_workers", int),
}


@dataclass
class EngineConfig:
    """Declarative description of one engine stack.

    Core evaluation
    ---------------
    ``policy``, ``incremental``, ``static_graph``,
    ``reuse_unchanged_windows``, ``share_windows``, ``delta_eval``,
    ``physical_plans``, ``graph_backend``, ``vectorized`` map one-to-one
    onto :class:`~repro.seraph.engine.SeraphEngine` knobs
    (``physical_plans=False`` forces the interpreted pipeline — results
    are identical, compiled plans are a pure optimization;
    ``graph_backend="columnar"`` swaps window snapshots to the
    interned, array-backed :class:`~repro.graph.columnar.ColumnarGraph`
    — emissions stay byte-identical, ``None`` defers to the
    ``REPRO_GRAPH_BACKEND`` environment variable; ``vectorized``
    enables set-at-a-time candidate pruning in the matcher
    (docs/VECTORIZED.md) — ``None`` defers to ``REPRO_VECTORIZED``
    and defaults to on under the columnar backend).

    Parallelism
    -----------
    ``parallel_workers=None`` (default) keeps evaluation serial; ``N >=
    1`` builds a :class:`~repro.runtime.parallel.ParallelEngine` with an
    ``N``-process pool, ``0`` sizes the pool to ``os.cpu_count()``.
    ``offload_threshold`` overrides the cost-model cutoff.
    ``max_worker_restarts`` is the supervisor's crash budget (pool
    rebuilds tolerated before degrading to in-parent execution) and
    ``task_timeout`` bounds each offloaded task's wall-clock seconds —
    both ignored for serial stacks.

    Chaos
    -----
    ``chaos`` takes a :class:`~repro.runtime.faults.ChaosConfig`: its
    worker axis (kills, poison tasks, delays, drops) feeds the pool
    supervisor, and — when ``resilient=True`` — its source axis wraps
    ``run_stream`` input in a seeded
    :class:`~repro.runtime.faults.FlakySource` while its sink axis
    slips a seeded :class:`~repro.runtime.faults.FlakySink` between the
    resilient delivery layer and each user sink.  One seed reproduces
    the whole chaotic run.

    Resilience
    ----------
    ``resilient=True`` wraps the core in a
    :class:`~repro.runtime.ResilientEngine`; the lateness/policy/retry
    fields configure it and are ignored (validated untouched) otherwise.

    Observability
    -------------
    ``observability=True`` creates a fresh
    :class:`~repro.obs.Observability` bundle shared by every layer; an
    existing bundle is accepted as-is (e.g. one registry across several
    engines); ``False`` (default) installs the shared no-op bundle —
    instrumented sites then cost one attribute check each.
    """

    # -- core -----------------------------------------------------------
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING
    incremental: bool = True
    static_graph: Optional[PropertyGraph] = None
    reuse_unchanged_windows: bool = True
    share_windows: bool = True
    delta_eval: bool = True
    physical_plans: bool = True
    graph_backend: Optional[str] = None
    vectorized: Optional[bool] = None
    # -- parallelism ----------------------------------------------------
    parallel_workers: Optional[int] = None
    offload_threshold: Optional[float] = None
    max_worker_restarts: Optional[int] = None
    task_timeout: Optional[float] = None
    # -- chaos ----------------------------------------------------------
    chaos: Optional[ChaosConfig] = None
    # -- resilience -----------------------------------------------------
    resilient: bool = False
    allowed_lateness: int = 0
    poison_policy: FaultPolicy = FaultPolicy.DEAD_LETTER
    late_policy: FaultPolicy = FaultPolicy.DEAD_LETTER
    sink_policy: FaultPolicy = FaultPolicy.DEAD_LETTER
    retry: Optional[RetryPolicy] = None
    dead_letter_capacity: Optional[int] = None
    fallback_factory: Optional[Callable] = None
    # -- observability --------------------------------------------------
    observability: Union[bool, Observability] = False
    span_limit: int = 100_000
    reservoir: int = 512

    def __post_init__(self) -> None:
        if self.parallel_workers is not None and self.parallel_workers < 0:
            raise EngineError(
                "parallel_workers must be None (serial), 0 (cpu count), "
                f"or positive, got {self.parallel_workers}"
            )
        if self.max_worker_restarts is not None \
                and self.max_worker_restarts < 0:
            raise EngineError("max_worker_restarts must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise EngineError("task_timeout must be positive")
        if self.chaos is not None and not isinstance(self.chaos, ChaosConfig):
            raise EngineError(
                f"chaos must be a ChaosConfig, got {type(self.chaos).__name__}"
            )
        if self.graph_backend is not None:
            from repro.graph.columnar import resolve_backend_name

            resolve_backend_name(self.graph_backend)  # raises on unknown
        if self.allowed_lateness < 0:
            raise EngineError("allowed_lateness must be >= 0")
        if self.span_limit < 0 or self.reservoir < 1:
            raise EngineError("span_limit must be >= 0, reservoir >= 1")

    def resolve_observability(self) -> Observability:
        """The bundle this config denotes (shared no-op when disabled)."""
        if isinstance(self.observability, Observability):
            return self.observability
        if self.observability:
            return Observability.create(
                span_limit=self.span_limit, reservoir=self.reservoir
            )
        return NOOP_OBS

    def replace(self, **changes) -> "EngineConfig":
        """A copy with ``changes`` applied (config objects stay usable
        after build)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(changes)
        return EngineConfig(**values)

    @classmethod
    def from_env(
        cls, environ: Optional[dict] = None, **overrides
    ) -> "EngineConfig":
        """The one knob-resolution path: explicit arg > env > default.

        Reads every ``REPRO_*`` engine knob (:data:`ENV_KNOBS`; table in
        docs/API.md) from ``environ`` (default ``os.environ``), then
        applies ``overrides`` on top — an explicit override always wins,
        including an explicit ``None`` (= defer to the engine-side
        default).  This replaces ad-hoc env reading scattered across the
        CLI, the service, and callers of :class:`EngineConfig`: resolve
        once here, pass the config around.
        """
        if environ is None:
            environ = os.environ
        values = {}
        for variable, (field_name, parse) in ENV_KNOBS.items():
            if field_name in overrides:
                continue
            raw = environ.get(variable)
            if raw is not None:
                try:
                    values[field_name] = parse(raw)
                except ValueError as exc:
                    raise EngineError(
                        f"cannot parse environment variable "
                        f"{variable}={raw!r}: {exc}"
                    ) from exc
        values.update(overrides)
        return cls(**values)


def build_engine(
    config: Optional[EngineConfig] = None, **overrides
) -> Union[SeraphEngine, ResilientEngine]:
    """Build the engine stack ``config`` describes.

    ``overrides`` are field-level shortcuts —
    ``build_engine(delta_eval=False)`` equals
    ``build_engine(EngineConfig(delta_eval=False))``.  Returns the
    outermost layer: a :class:`~repro.runtime.ResilientEngine` when
    ``resilient=True``, the (serial or parallel) core engine otherwise.
    Every layer shares one observability bundle, reachable as ``.obs``
    on whatever comes back.
    """
    if config is None:
        config = EngineConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    obs = config.resolve_observability()
    core_kwargs = dict(
        policy=config.policy,
        incremental=config.incremental,
        static_graph=config.static_graph,
        reuse_unchanged_windows=config.reuse_unchanged_windows,
        share_windows=config.share_windows,
        delta_eval=config.delta_eval,
        physical_plans=config.physical_plans,
        graph_backend=config.graph_backend,
        vectorized=config.vectorized,
        obs=obs,
    )
    if config.parallel_workers is None:
        engine: SeraphEngine = SeraphEngine(**core_kwargs)
    else:
        from repro.runtime.parallel import (
            DEFAULT_OFFLOAD_THRESHOLD,
            ParallelEngine,
        )

        engine = ParallelEngine(
            workers=config.parallel_workers,
            offload_threshold=(
                config.offload_threshold
                if config.offload_threshold is not None
                else DEFAULT_OFFLOAD_THRESHOLD
            ),
            max_worker_restarts=config.max_worker_restarts,
            task_timeout=config.task_timeout,
            chaos=config.chaos,
            **core_kwargs,
        )
    if not config.resilient:
        return engine
    return ResilientEngine(
        engine,
        allowed_lateness=config.allowed_lateness,
        poison_policy=config.poison_policy,
        late_policy=config.late_policy,
        sink_policy=config.sink_policy,
        retry=config.retry,
        dead_letter_capacity=config.dead_letter_capacity,
        fallback_factory=config.fallback_factory,
        chaos=config.chaos,
    )
