"""Exception hierarchy for the Seraph reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for property-graph model errors."""


class GraphConsistencyError(GraphError):
    """A property graph violates Definition 3.1 (dangling endpoints, ...)."""


class GraphUnionError(GraphError):
    """Two graphs cannot be united under UNA (Definition 5.4).

    Raised when the same identifier carries conflicting labels, types,
    endpoints, or property values in the two operands.
    """


class TableError(ReproError):
    """Base class for table (Definition 3.2) errors."""


class SchemaMismatchError(TableError):
    """Records with different field sets were mixed into one table."""


class TemporalError(ReproError):
    """Invalid time instants, intervals, or ISO-8601 strings."""


class StreamError(ReproError):
    """Base class for property-graph-stream errors."""


class OutOfOrderEventError(StreamError):
    """A stream element arrived with a timestamp before the stream head."""


class IngestionError(StreamError):
    """A raw queue message is malformed or violates the ingestion contract.

    Raised (instead of raw ``KeyError``/``TypeError`` escaping from the
    updating-query evaluator) so fault policies can catch exactly
    library-detected bad input, never programming errors.
    """


class LateEventError(StreamError):
    """An element arrived later than the configured allowed lateness."""


class PartitionError(StreamError):
    """A partition classifier failed on a stream element.

    Wraps the classifier's own exception (``__cause__``) and keeps the
    offending ``item`` (stream element or relationship), so fault
    policies can quarantine exactly the input that broke classification
    instead of aborting the whole partitioned run.
    """

    def __init__(self, message: str, item: object = None):
        super().__init__(message)
        self.item = item


class PoisonMessageError(IngestionError):
    """A stream payload could not be decoded into a valid element."""


class WindowError(ReproError):
    """Invalid window configuration (Definition 5.9)."""


class TimeVaryingTableError(ReproError):
    """A time-varying table constraint (Definition 5.7) was violated."""


class CypherError(ReproError):
    """Base class for Cypher language errors."""


class CypherSyntaxError(CypherError):
    """Lexing or parsing failed.

    Carries the 1-based ``line`` and ``column`` of the offending position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CypherTypeError(CypherError):
    """An expression was applied to a value of the wrong type."""


class CypherEvaluationError(CypherError):
    """Runtime evaluation failure (unknown variable, bad aggregate, ...)."""


class PhysicalPlanError(CypherError):
    """A query cannot be lowered to a physical operator plan.

    Raised at compile time only; the engine falls back to the interpreted
    pipeline (results are identical either way)."""


class SeraphError(ReproError):
    """Base class for Seraph language and engine errors."""


class SeraphSyntaxError(SeraphError, CypherSyntaxError):
    """Seraph-level parse failure (Figure 6 grammar)."""


class SeraphSemanticError(SeraphError):
    """A structurally valid Seraph query is semantically ill-formed."""


class QueryRegistryError(SeraphError):
    """Registering/deregistering a continuous query failed."""


class EngineError(SeraphError):
    """Continuous engine runtime failure."""


class ParallelExecutionError(EngineError):
    """The parallel execution substrate failed beyond recovery.

    Raised by the pool supervisor instead of leaking
    ``concurrent.futures`` internals (``BrokenProcessPool``, pickling
    failures) to callers: either the pool exceeded its crash budget with
    graceful degradation disabled, or one task kept failing after every
    configured retry.  ``signature`` identifies the window group whose
    evaluation failed (its ``(stream, width)`` keys plus the evaluation
    instant); ``workers`` is the pool size.  The original failure rides
    along as ``__cause__``.
    """

    def __init__(self, message: str, signature: object = None,
                 workers: object = None):
        super().__init__(message)
        self.signature = signature
        self.workers = workers


class DataflowError(SeraphError):
    """Base class for ``EMIT ... INTO`` dataflow errors.

    Like :class:`ServiceError`, every dataflow failure carries an HTTP
    ``status`` so the service boundary can translate typed errors into
    responses without string matching.
    """

    status = 400


class DataflowCycleError(DataflowError):
    """Registering a query would close a cycle in the dataflow DAG.

    The message names the cycle path through its derived streams
    (``a -[s1]-> b -[s2]-> a``); a self-loop — a query consuming the
    stream it emits into — is the length-1 case.  Maps to HTTP 409:
    the registration conflicts with the current query set.
    """

    status = 409


class UnknownStreamError(DataflowError):
    """A lookup named a derived stream no registered query emits into."""

    status = 404


class SinkDeliveryError(SeraphError):
    """A sink kept failing after all configured delivery attempts."""


class CircuitOpenError(SinkDeliveryError):
    """Delivery was refused because the sink's circuit breaker is open."""


class CheckpointError(ReproError):
    """An engine checkpoint document is malformed or incompatible."""


class ServiceError(ReproError):
    """Base class for continuous-query service errors.

    Every service-layer failure maps to one HTTP status code via
    ``status``, so the server can translate typed errors into responses
    without string matching.
    """

    status = 500


class AuthenticationError(ServiceError):
    """A request failed the tenant's bearer-token auth boundary."""

    status = 401


class UnknownTenantError(ServiceError):
    """The request names a tenant the service does not know."""

    status = 404


class QuotaExceededError(ServiceError):
    """A tenant exceeded one of its configured quotas.

    Covers registered-query count, events/sec admission (token bucket),
    and any other per-tenant limit; always surfaces as HTTP 429.
    """

    status = 429


class TenantQuarantinedError(ServiceError):
    """The tenant's engine kept failing and was fenced off.

    Per-tenant crash containment: after the configured number of
    consecutive engine failures the tenant answers 503 (other tenants
    are unaffected) until it is restored from a checkpoint or reset.
    """

    status = 503


class ConsumerLagError(ServiceError):
    """An SSE consumer fell behind the bounded emission buffer.

    Raised server-side to circuit-break the consumer: the connection is
    shed instead of letting the buffer grow without bound.
    """

    status = 409


class MetricsError(ReproError):
    """A metrics query was invalid (bad percentile, kind mismatch)."""


class ObservabilityError(ReproError):
    """An observability document failed schema validation."""
