"""Baselines: the Cypher polling workaround and snapshot-maintenance arms."""

from repro.baselines.polling import CypherPollingBaseline, PollResult
from repro.baselines.recompute import (
    incremental_engine,
    naive_executor,
    recompute_engine,
)

__all__ = [
    "CypherPollingBaseline",
    "PollResult",
    "incremental_engine",
    "naive_executor",
    "recompute_engine",
]
