"""The Cypher polling workaround of Section 3.3.

The paper argues Cypher alone can only emulate continuous evaluation via
"external code that executes this query every 5 minutes" against the
persisted, ever-growing merged graph — breaking R1 and paying a full
re-evaluation over the whole store per poll.  This module implements that
workaround faithfully so correctness can be cross-checked (snapshot
reducibility) and performance compared against the native engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.cypher import ast as cypher_ast
from repro.cypher.evaluator import QueryEvaluator
from repro.cypher.parser import parse_cypher
from repro.graph.model import PropertyGraph
from repro.graph.table import Table
from repro.graph.temporal import TimeInstant
from repro.graph.union import merge
from repro.stream.report import ReportPolicy, ReportState
from repro.stream.stream import StreamElement
from repro.stream.timeline import TimeInterval
from repro.stream.tvt import TimeAnnotatedTable


@dataclass(frozen=True)
class PollResult:
    """One poll: the evaluation instant and its (annotated) result."""

    instant: TimeInstant
    table: TimeAnnotatedTable


class CypherPollingBaseline:
    """External-driver emulation of a continuous query.

    * every arriving event is ``MERGE``-loaded into one persisted graph
      (the Neo4j-Kafka-connector pipeline of Section 2);
    * every ``period`` seconds the one-time Cypher query runs against the
      *whole* store with ``$win_start``/``$win_end`` parameters standing
      in for the window — the store never forgets, so each poll pays for
      the full history (the paper's "suboptimal query evaluation").
    """

    def __init__(
        self,
        query: Union[str, cypher_ast.Query],
        starting_at: TimeInstant,
        width: int,
        period: int,
        report: ReportPolicy = ReportPolicy.SNAPSHOT,
    ):
        self.query = parse_cypher(query) if isinstance(query, str) else query
        self.starting_at = starting_at
        self.width = width
        self.period = period
        self._graph = PropertyGraph.empty()
        self._report = ReportState(report)
        self._next_poll = starting_at
        self.polls: List[PollResult] = []

    @property
    def store(self) -> PropertyGraph:
        """The persisted merged graph (grows without bound)."""
        return self._graph

    def load(self, element: StreamElement) -> None:
        """MERGE one event into the persisted graph."""
        self._graph = merge(self._graph, element.graph)

    def poll(self, instant: TimeInstant) -> PollResult:
        """Run the one-time query for the window ending at ``instant``."""
        interval = TimeInterval(instant - self.width, instant)
        evaluator = QueryEvaluator(
            self._graph,
            parameters={"win_start": interval.start, "win_end": interval.end},
            base_scope={"win_start": interval.start, "win_end": interval.end},
        )
        table = evaluator.run(self.query)
        emitted = self._report.apply(table)
        result = PollResult(
            instant=instant,
            table=TimeAnnotatedTable(table=emitted, interval=interval),
        )
        self.polls.append(result)
        return result

    def run_stream(
        self,
        elements: Iterable[StreamElement],
        until: Optional[TimeInstant] = None,
    ) -> List[PollResult]:
        """Drive the whole poll loop over a finite stream."""
        results: List[PollResult] = []
        last: Optional[TimeInstant] = None
        for element in elements:
            while self._next_poll < element.instant:
                results.append(self.poll(self._next_poll))
                self._next_poll += self.period
            self.load(element)
            last = element.instant
        final = until if until is not None else last
        if final is not None:
            while self._next_poll <= final:
                results.append(self.poll(self._next_poll))
                self._next_poll += self.period
        return results
