"""Snapshot-maintenance baselines for the ablation benchmark (P2).

Three ways to obtain each evaluation's snapshot graph, from naive to the
engine's default:

1. :func:`naive_executor` — the denotational semantics itself: re-extract
   the substream and re-union it per evaluation (no state at all).
2. ``SeraphEngine(incremental=False)`` — window content tracked
   incrementally, union recomputed per evaluation.
3. ``SeraphEngine(incremental=True)`` — full incremental maintenance
   (refcounted union), the default.

All three must produce identical emissions; benchmarks measure the cost
gap as window/slide ratios change.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.graph.temporal import TimeInstant
from repro.seraph.ast import SeraphQuery
from repro.seraph.engine import SeraphEngine
from repro.seraph.parser import parse_seraph
from repro.seraph.semantics import continuous_run
from repro.seraph.sinks import Emission
from repro.stream.stream import PropertyGraphStream, StreamElement
from repro.stream.window import ActiveSubstreamPolicy


def naive_executor(
    query: Union[str, SeraphQuery],
    elements: Iterable[StreamElement],
    until: TimeInstant,
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
) -> List[Emission]:
    """Stateless re-evaluation from the raw stream (Definition 5.8 by the
    letter).  Returns emissions shaped like the engine's."""
    if isinstance(query, str):
        query = parse_seraph(query)
    stream = PropertyGraphStream(elements)
    out: List[Emission] = []
    instant = query.starting_at
    for annotated in continuous_run(query, stream, until, policy):
        out.append(
            Emission(query_name=query.name, instant=instant, table=annotated)
        )
        instant += query.slide if query.is_continuous else 0
    return out


def recompute_engine(
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
) -> SeraphEngine:
    """An engine that re-unions the window per evaluation (ablation arm)."""
    return SeraphEngine(policy=policy, incremental=False)


def incremental_engine(
    policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
) -> SeraphEngine:
    """The default fully-incremental engine (for symmetric bench naming)."""
    return SeraphEngine(policy=policy, incremental=True)
