"""Multi-tenant continuous-query service over the engine front door.

``python -m repro serve`` boots a dependency-free asyncio HTTP/1.1
server (:mod:`repro.service.server`) in front of
:func:`repro.build_engine`: per-tenant namespaces with quotas and
token-bucket admission (:mod:`~repro.service.tenants`,
:mod:`~repro.service.admission`), bearer-token auth
(:mod:`~repro.service.auth`), SSE emission streams with heartbeats,
``Last-Event-ID`` resume, and slow-consumer circuit breakers
(:mod:`~repro.service.sse`), plus tenant checkpoint/restore riding the
PR 1 checkpoint format.  Full contract in docs/SERVICE.md.
"""

from repro.service.admission import TokenBucket
from repro.service.auth import Authenticator, parse_bearer
from repro.service.client import ServiceClient, ServiceResponse, SseEvent
from repro.service.server import (
    SeraphService,
    ServiceConfig,
    engine_config_from_dict,
    run_service,
    tenant_spec_from_dict,
)
from repro.service.sse import (
    EmissionLog,
    ServiceSink,
    emission_document,
    emission_json,
    format_event,
)
from repro.service.tenants import (
    TENANT_CHECKPOINT_VERSION,
    TenantManager,
    TenantMetrics,
    TenantQuotas,
    TenantSpec,
    TenantState,
)

__all__ = [
    "TENANT_CHECKPOINT_VERSION",
    "Authenticator",
    "EmissionLog",
    "SeraphService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceSink",
    "SseEvent",
    "TenantManager",
    "TenantMetrics",
    "TenantQuotas",
    "TenantSpec",
    "TenantState",
    "TokenBucket",
    "emission_document",
    "emission_json",
    "engine_config_from_dict",
    "format_event",
    "parse_bearer",
    "run_service",
    "tenant_spec_from_dict",
]
