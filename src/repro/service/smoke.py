"""End-to-end smoke check: boot, register, push, stream, shut down.

Run as ``python -m repro.service.smoke`` (wired up as ``make
serve-smoke``): starts a real :class:`SeraphService` on an ephemeral
port, registers the paper's Listing 5 query for one tenant, pushes the
Figure 1 stream over HTTP, asserts at least one SSE emission arrives
byte-identical to an offline run, checks tenant status, and shuts the
service down cleanly — failing loudly if any asyncio task leaks.
"""

from __future__ import annotations

import asyncio
import sys

from repro.api import EngineConfig, build_engine
from repro.runtime.checkpoint import graph_to_dict
from repro.seraph.sinks import CollectingSink
from repro.service.client import ServiceClient
from repro.service.server import SeraphService, ServiceConfig
from repro.service.sse import emission_json
from repro.service.tenants import TenantQuotas, TenantSpec
from repro.usecases.micromobility import LISTING5_SERAPH, _t, figure1_stream

TENANT = "smoke"
TOKEN = "smoke-secret"


def offline_emissions():
    """The ground truth: Listing 5 over Figure 1 on a bare engine."""
    engine = build_engine(EngineConfig())
    sink = CollectingSink()
    engine.register(LISTING5_SERAPH, sink=sink)
    engine.run_stream(figure1_stream(), until=_t("15:40"))
    return [emission_json(emission) for emission in sink.emissions]


async def run_smoke() -> int:
    service = SeraphService(ServiceConfig(
        port=0,
        tenants={TENANT: TenantSpec(
            name=TENANT, token=TOKEN,
            quotas=TenantQuotas(max_buffered_emissions=64),
        )},
        heartbeat_seconds=1.0,
    ))
    await service.start()
    client = ServiceClient("127.0.0.1", service.port, token=TOKEN)
    try:
        health = await client.request("GET", "/healthz")
        assert health.status == 200, health.body

        registered = await client.request(
            "POST", f"/tenants/{TENANT}/queries",
            payload={"query": LISTING5_SERAPH},
        )
        assert registered.status == 201, registered.body
        query = registered.json()["query"]

        reader, writer = await client.open_sse(
            f"/tenants/{TENANT}/queries/{query}/emissions"
        )
        for element in figure1_stream():
            pushed = await client.request(
                "POST", f"/tenants/{TENANT}/streams/default/events",
                payload={
                    "instant": element.instant,
                    "graph": graph_to_dict(element.graph),
                },
            )
            assert pushed.status == 202, pushed.body
        advanced = await client.request(
            "POST", f"/tenants/{TENANT}/advance",
            payload={"until": _t("15:40")},
        )
        assert advanced.status == 200, advanced.body

        expected = offline_emissions()
        assert expected, "offline run produced no emissions"
        streamed = []
        while len(streamed) < len(expected):
            frame = await asyncio.wait_for(
                client.read_event(reader), timeout=10.0
            )
            assert frame is not None, "SSE stream ended early"
            assert frame.event == "emission", frame.event
            streamed.append(frame.data)
        writer.close()
        assert streamed == expected, (
            "service emissions diverged from the offline run"
        )

        status = await client.request("GET", f"/tenants/{TENANT}/status")
        assert status.status == 200
        service_section = status.json()["service"]
        assert service_section["metrics"]["events"] == len(figure1_stream())
        assert service_section["metrics"]["emissions"] >= len(expected)
    finally:
        await service.stop()

    lingering = [
        task for task in asyncio.all_tasks()
        if task is not asyncio.current_task() and not task.done()
    ]
    assert not lingering, f"leaked asyncio tasks: {lingering}"
    print(
        f"serve-smoke OK: {len(figure1_stream())} events -> "
        f"{len(streamed)} byte-identical SSE emissions, clean shutdown"
    )
    return 0


def main() -> int:
    return asyncio.run(run_smoke())


if __name__ == "__main__":
    sys.exit(main())
