"""Server-sent-events plumbing: bounded emission logs + wire format.

Every registered query gets one :class:`EmissionLog` — a bounded,
monotonically-numbered buffer its :class:`ServiceSink` appends to as the
engine evaluates.  SSE consumers are cursors over the log: they stream
the backlog after their ``Last-Event-ID`` and then wait (with
heartbeats) for new entries.  The log is the service's only emission
buffer, and it is *bounded*: when it overflows, the oldest entries are
evicted and any consumer whose cursor falls off the tail is
circuit-broken (disconnected with a ``shed`` event) instead of letting
per-consumer buffers grow without bound.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConsumerLagError
from repro.runtime.checkpoint import encode_value
from repro.seraph.sinks import Emission, Sink


def emission_document(emission: Emission) -> Dict[str, Any]:
    """The JSON-safe document one emission serializes to on the wire.

    Rows reuse the checkpoint value codec (full node/relationship/path
    fidelity), so an offline run serialized through this same function
    is byte-identical to what the service streams — the property the
    integration tests pin.
    """
    return {
        "query": emission.query_name,
        "instant": emission.instant,
        "win_start": emission.table.win_start,
        "win_end": emission.table.win_end,
        "rows": [
            {name: encode_value(record[name]) for name in record}
            for record in emission.table
        ],
    }


def emission_json(emission: Emission) -> str:
    """Canonical single-line JSON for one emission (sorted keys)."""
    return json.dumps(emission_document(emission), sort_keys=True)


def format_event(
    data: str, event_id: Optional[int] = None, event: Optional[str] = None
) -> bytes:
    """One ``text/event-stream`` frame (id/event/data lines + blank)."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    for chunk in data.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


HEARTBEAT_FRAME = b": heartbeat\n\n"


class EmissionLog:
    """Bounded, absolutely-numbered emission buffer for one query.

    Entry ids start at 0 and never repeat; ``first_id`` advances as the
    bounded buffer evicts from the front.  ``evicted`` counts entries
    dropped before any consumer read obligation is checked — consumers
    that still needed them are shed on their next read.
    """

    def __init__(self, capacity: int, next_id: int = 0):
        if capacity < 1:
            raise ValueError("emission log capacity must be >= 1")
        self.capacity = capacity
        self.next_id = next_id
        self.first_id = next_id
        self._entries: List[str] = []
        self.evicted = 0
        self._waiters: List[asyncio.Future] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, data: str) -> int:
        """Append one serialized emission; returns its event id."""
        entry_id = self.next_id
        self._entries.append(data)
        self.next_id += 1
        overflow = len(self._entries) - self.capacity
        if overflow > 0:
            del self._entries[:overflow]
            self.first_id += overflow
            self.evicted += overflow
        self._notify()
        return entry_id

    def after(self, last_id: int) -> List[Tuple[int, str]]:
        """Entries with id > ``last_id`` (the consumer's cursor).

        Raises :class:`ConsumerLagError` when the cursor has fallen off
        the bounded buffer — entries the consumer never saw were already
        evicted, so resuming would silently skip emissions.
        """
        start = last_id + 1
        if start < self.first_id:
            raise ConsumerLagError(
                f"consumer cursor {last_id} fell behind the bounded "
                f"emission buffer (oldest retained id {self.first_id}); "
                "reconnect without Last-Event-ID for a fresh tail"
            )
        offset = start - self.first_id
        return [
            (self.first_id + offset + index, data)
            for index, data in enumerate(self._entries[offset:])
        ]

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def wait(self) -> None:
        """Block until the next append (cancellation-safe)."""
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        finally:
            if waiter in self._waiters:
                self._waiters.remove(waiter)

    def close(self) -> None:
        """Wake every waiter (used on deregistration/shutdown)."""
        self._notify()


class ServiceSink(Sink):
    """The engine-side sink bridging evaluations into an emission log.

    Receives synchronously on the event-loop thread (engine calls are
    plain function calls in the request handlers), serializes once, and
    appends — every SSE consumer then shares the one serialized copy.
    """

    def __init__(
        self,
        log: EmissionLog,
        skip_empty: bool = True,
        on_append=None,
    ):
        self.log = log
        self.skip_empty = skip_empty
        self.on_append = on_append
        self.received = 0

    def receive(self, emission: Emission) -> None:
        self.received += 1
        if self.skip_empty and emission.is_empty():
            return
        self.log.append(emission_json(emission))
        if self.on_append is not None:
            self.on_append()
