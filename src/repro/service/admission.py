"""Token-bucket admission control for the continuous-query service.

Each tenant owns one :class:`TokenBucket` sized from its
``max_events_per_sec`` quota; every ingested event costs one token.  A
request that cannot afford its tokens is rejected up front (HTTP 429)
instead of queueing work the engine cannot keep up with — admission
control is the first line of the service's backpressure story
(docs/SERVICE.md).
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full.  ``clock`` is injectable (monotonic seconds)
    so tests drive time deterministically.  A non-positive ``rate``
    disables throttling entirely — every acquire succeeds.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._refilled = clock()
        #: Total tokens ever refused (for the tenant's throttle counter).
        self.rejected = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` (and count) otherwise."""
        if self.rate <= 0:
            return True
        self._refill()
        if tokens <= self._tokens:
            self._tokens -= tokens
            return True
        self.rejected += int(tokens) or 1
        return False

    @property
    def available(self) -> float:
        """Tokens currently affordable (refilled view)."""
        if self.rate <= 0:
            return float("inf")
        self._refill()
        return self._tokens

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "available": (
                self.available if self.rate > 0 else None
            ),
            "rejected": self.rejected,
        }
