"""Bearer-token authentication boundary for the service.

Each tenant may carry one secret token; requests under
``/tenants/{t}/...`` must then present ``Authorization: Bearer <token>``.
Tokens are compared with :func:`hmac.compare_digest` (no timing oracle).
A tenant configured *without* a token is open — the single-user
quickstart path — but mixing open and protected tenants in one service
is fully supported.
"""

from __future__ import annotations

import hmac
from typing import Dict, Optional

from repro.errors import AuthenticationError


def parse_bearer(header: Optional[str]) -> Optional[str]:
    """The token inside an ``Authorization: Bearer ...`` header value."""
    if header is None:
        return None
    scheme, _, credentials = header.strip().partition(" ")
    if scheme.lower() != "bearer" or not credentials.strip():
        return None
    return credentials.strip()


class Authenticator:
    """Per-tenant bearer-token check.

    ``tokens`` maps tenant name to its secret (``None`` = open tenant).
    Unknown tenants are *not* this layer's concern — the tenant manager
    404s them first; :meth:`check` only answers "may this request act as
    tenant ``t``".
    """

    def __init__(self, tokens: Optional[Dict[str, Optional[str]]] = None):
        self._tokens: Dict[str, Optional[str]] = dict(tokens or {})

    def set_token(self, tenant: str, token: Optional[str]) -> None:
        self._tokens[tenant] = token

    def forget(self, tenant: str) -> None:
        self._tokens.pop(tenant, None)

    def check(self, tenant: str, authorization: Optional[str]) -> None:
        """Raise :class:`AuthenticationError` unless the request may act
        as ``tenant``."""
        expected = self._tokens.get(tenant)
        if expected is None:
            return
        presented = parse_bearer(authorization)
        if presented is None:
            raise AuthenticationError(
                f"tenant {tenant!r} requires a bearer token "
                "(Authorization: Bearer <token>)"
            )
        if not hmac.compare_digest(
            presented.encode("utf-8"), expected.encode("utf-8")
        ):
            raise AuthenticationError(
                f"invalid bearer token for tenant {tenant!r}"
            )
