"""A minimal asyncio client for the service (tests + smoke checks).

Deliberately tiny and dependency-free: one connection per request
(mirroring the server's ``Connection: close`` contract), JSON bodies in
and out, and an SSE consumer that parses ``text/event-stream`` frames
incrementally.  This is *not* a production client — it exists so the
integration tests and ``make serve-smoke`` can exercise the real wire
protocol without pulling in an HTTP library.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple


class ServiceResponse:
    """One parsed HTTP response (status + headers + decoded body)."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class SseEvent:
    """One parsed SSE frame (``None`` fields when the line was absent)."""

    __slots__ = ("event_id", "event", "data")

    def __init__(self, event_id: Optional[int], event: Optional[str],
                 data: str):
        self.event_id = event_id
        self.event = event
        self.data = data

    def json(self) -> Any:
        return json.loads(self.data)


class ServiceClient:
    """Issue requests against one running :class:`SeraphService`."""

    def __init__(self, host: str, port: int, token: Optional[str] = None):
        self.host = host
        self.port = port
        self.token = token

    def _headers(self, extra: Optional[Dict[str, str]]) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if extra:
            headers.update(extra)
        return headers

    async def _connect(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
    ) -> None:
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Dict[str, str]]:
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        """One request/response round trip (JSON payload or raw body)."""
        request_headers = self._headers(headers)
        if body is None:
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                request_headers.setdefault(
                    "Content-Type", "application/json"
                )
            else:
                body = b""
        reader, writer = await self._connect()
        try:
            await self._send(writer, method, path, body, request_headers)
            status, response_headers = await self._read_head(reader)
            length = int(response_headers.get("content-length", "0") or 0)
            data = await reader.readexactly(length) if length else b""
            return ServiceResponse(status, response_headers, data)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- SSE ---------------------------------------------------------------

    async def open_sse(
        self,
        path: str,
        last_event_id: Optional[int] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Open an emissions stream; returns the live (reader, writer)
        after the 200 response head (caller owns closing the writer)."""
        request_headers = self._headers(headers)
        if last_event_id is not None:
            request_headers["Last-Event-ID"] = str(last_event_id)
        reader, writer = await self._connect()
        await self._send(writer, "GET", path, b"", request_headers)
        status, response_headers = await self._read_head(reader)
        if status != 200:
            length = int(response_headers.get("content-length", "0") or 0)
            data = await reader.readexactly(length) if length else b""
            writer.close()
            raise RuntimeError(
                f"SSE open failed: {status} {data.decode('utf-8', 'replace')}"
            )
        return reader, writer

    @staticmethod
    async def read_event(
        reader: asyncio.StreamReader,
        include_heartbeats: bool = False,
    ) -> Optional[SseEvent]:
        """Parse the next SSE frame; ``None`` at end-of-stream.

        Comment-only frames (heartbeats) are skipped unless
        ``include_heartbeats`` — then they come back as an event named
        ``"heartbeat"`` with empty data.
        """
        while True:
            event_id: Optional[int] = None
            event: Optional[str] = None
            data_lines = []
            saw_comment = False
            while True:
                line = await reader.readline()
                if not line:
                    return None
                text = line.decode("utf-8").rstrip("\r\n")
                if not text:
                    break  # frame boundary
                if text.startswith(":"):
                    saw_comment = True
                elif text.startswith("id:"):
                    event_id = int(text[3:].strip())
                elif text.startswith("event:"):
                    event = text[6:].strip()
                elif text.startswith("data:"):
                    data_lines.append(text[5:].lstrip())
            if data_lines or event is not None:
                return SseEvent(event_id, event, "\n".join(data_lines))
            if saw_comment and include_heartbeats:
                return SseEvent(None, "heartbeat", "")
            # otherwise: heartbeat we were asked to skip; keep reading

    async def events(
        self,
        path: str,
        count: int,
        last_event_id: Optional[int] = None,
        timeout: float = 10.0,
    ) -> AsyncIterator[SseEvent]:
        """Consume exactly ``count`` data frames from one SSE stream."""
        reader, writer = await self.open_sse(path, last_event_id)
        try:
            for _ in range(count):
                frame = await asyncio.wait_for(
                    self.read_event(reader), timeout
                )
                if frame is None:
                    return
                yield frame
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
