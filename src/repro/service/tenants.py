"""Per-tenant namespaces: engines, quotas, metrics, checkpoints.

One :class:`TenantState` owns one engine stack (built through the
:class:`~repro.api.EngineConfig` front door — the service has no other
construction path), its named input streams, one bounded
:class:`~repro.service.sse.EmissionLog` per registered query, a
token-bucket admission controller, and a small crash-containment fence:
engine failures are counted per tenant, and a tenant whose engine keeps
failing is quarantined (503) without touching its neighbours.

:class:`TenantManager` is the service-wide registry: static tenants from
configuration, optional dynamic creation, and whole-service snapshot /
restore riding on the PR 1 checkpoint format
(:mod:`repro.runtime.checkpoint`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.api import EngineConfig, build_engine
from repro.errors import (
    QuotaExceededError,
    ReproError,
    TenantQuarantinedError,
    UnknownStreamError,
    UnknownTenantError,
)
from repro.runtime.checkpoint import engine_from_dict, engine_to_dict
from repro.runtime.engine import ResilientEngine
from repro.seraph.ast import DEFAULT_STREAM
from repro.seraph.parser import parse_seraph
from repro.service.admission import TokenBucket
from repro.service.auth import Authenticator
from repro.service.sse import EmissionLog, ServiceSink
from repro.stream.stream import StreamElement

TENANT_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class TenantQuotas:
    """Per-tenant resource limits (all enforced, all surfaced in status).

    ``max_events_per_sec <= 0`` disables admission throttling;
    ``burst`` defaults to one second's worth of tokens.
    """

    max_queries: int = 16
    max_events_per_sec: float = 0.0
    burst: Optional[float] = None
    max_buffered_emissions: int = 256
    max_engine_failures: int = 3

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_queries": self.max_queries,
            "max_events_per_sec": self.max_events_per_sec,
            "burst": self.burst,
            "max_buffered_emissions": self.max_buffered_emissions,
            "max_engine_failures": self.max_engine_failures,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantQuotas":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant (configuration-file shape)."""

    name: str
    token: Optional[str] = None
    quotas: TenantQuotas = field(default_factory=TenantQuotas)
    engine: Optional[EngineConfig] = None


class TenantMetrics:
    """Per-tenant service counters (requests, events, emissions, sheds)."""

    __slots__ = (
        "requests", "events", "throttled", "emissions",
        "shed_consumers", "auth_failures", "engine_errors",
        "checkpoints", "restores",
    )

    def __init__(self):
        self.requests = 0
        self.events = 0
        self.throttled = 0
        self.emissions = 0
        self.shed_consumers = 0
        self.auth_failures = 0
        self.engine_errors = 0
        self.checkpoints = 0
        self.restores = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class TenantState:
    """One live tenant: engine stack + logs + quotas + containment."""

    def __init__(
        self,
        spec: TenantSpec,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.spec = spec
        self.name = spec.name
        self.quotas = spec.quotas
        self.metrics = TenantMetrics()
        self.bucket = TokenBucket(
            rate=spec.quotas.max_events_per_sec,
            burst=spec.quotas.burst,
            clock=clock,
        )
        self._clock = clock
        self.engine = build_engine(spec.engine or EngineConfig())
        self.logs: Dict[str, EmissionLog] = {}
        self.sinks: Dict[str, ServiceSink] = {}
        self.failures = 0  # consecutive unexpected engine failures
        self.quarantined = False

    # -- engine plumbing ---------------------------------------------------

    @property
    def _resilient(self) -> bool:
        return isinstance(self.engine, ResilientEngine)

    @property
    def _core(self):
        return self.engine.engine if self._resilient else self.engine

    @property
    def obs(self):
        return self.engine.obs

    def _check_fence(self) -> None:
        if self.quarantined:
            raise TenantQuarantinedError(
                f"tenant {self.name!r} is quarantined after "
                f"{self.failures} consecutive engine failures; restore it "
                "from a checkpoint to resume"
            )

    def _contained(self, operation: Callable[[], Any]) -> Any:
        """Run one engine operation inside the per-tenant crash fence.

        Library-level :class:`ReproError` (bad queries, out-of-order
        events, ...) passes through untouched — it is the caller's
        input problem, not engine damage.  Anything else counts toward
        the crash budget and quarantines the tenant when exhausted.
        """
        self._check_fence()
        try:
            result = operation()
        except ReproError:
            raise
        except Exception:
            self.failures += 1
            self.metrics.engine_errors += 1
            if self.failures >= self.quotas.max_engine_failures:
                self.quarantined = True
            raise
        self.failures = 0
        return result

    # -- queries -----------------------------------------------------------

    def register_query(self, text: str, skip_empty: bool = False):
        """Register one Seraph query; returns its engine-side handle."""
        if len(self.logs) >= self.quotas.max_queries:
            raise QuotaExceededError(
                f"tenant {self.name!r} is at its query quota "
                f"({self.quotas.max_queries})"
            )
        query = parse_seraph(text)
        log = EmissionLog(self.quotas.max_buffered_emissions)
        sink = ServiceSink(
            log, skip_empty=skip_empty, on_append=self._count_emission
        )
        handle = self._contained(
            lambda: self.engine.register(query, sink=sink)
        )
        self.logs[query.name] = log
        self.sinks[query.name] = sink
        if self.obs.enabled:
            self.obs.registry.inc(f"service.tenant.{self.name}.queries")
        return handle

    def _count_emission(self) -> None:
        self.metrics.emissions += 1
        if self.obs.enabled:
            self.obs.registry.inc(f"service.tenant.{self.name}.emissions")

    def deregister_query(self, name: str) -> None:
        self._contained(lambda: self.engine.deregister(name))
        self.sinks.pop(name, None)
        log = self.logs.pop(name, None)
        if log is not None:
            log.close()

    def log_for(self, name: str) -> EmissionLog:
        log = self.logs.get(name)
        if log is None:
            raise UnknownTenantError(
                f"tenant {self.name!r} has no registered query {name!r}"
            )
        return log

    @property
    def query_names(self):
        return list(self.logs)

    # -- derived streams ---------------------------------------------------

    def derived_streams(self) -> Dict[str, Any]:
        """The tenant's derived streams (``EMIT ... INTO`` targets).

        Keyed by stream name; each descriptor names the producing and
        consuming queries plus the stream's cursor (elements
        materialized so far) — the engine's dataflow status section
        (docs/DATAFLOW.md).
        """
        return self._core.dataflow_status()["streams"]

    def stream_log(self, stream: str) -> EmissionLog:
        """The emission log feeding a derived stream.

        Derived-stream SSE rides on the producing query's log (its
        emissions *are* the stream, pre-materialization); with several
        producers the first-registered one is served.  Raises
        :class:`~repro.errors.UnknownStreamError` (404) when no
        registered query emits into ``stream``.
        """
        producers = self._core.dataflow.producers_of(stream)
        if not producers:
            known = sorted(self._core.dataflow.produced_streams())
            raise UnknownStreamError(
                f"tenant {self.name!r} has no derived stream {stream!r} "
                f"(derived streams: {known if known else 'none'})"
            )
        return self.log_for(producers[0])

    # -- ingestion ---------------------------------------------------------

    def admit(self, events: int) -> None:
        """Token-bucket admission for a batch of ``events`` events."""
        if not self.bucket.try_acquire(float(events)):
            self.metrics.throttled += events
            if self.obs.enabled:
                self.obs.registry.inc(
                    f"service.tenant.{self.name}.throttled", events
                )
            raise QuotaExceededError(
                f"tenant {self.name!r} exceeded its event admission rate "
                f"({self.quotas.max_events_per_sec}/s)"
            )

    def push(self, element: StreamElement, stream: str = DEFAULT_STREAM) -> None:
        """Ingest one admitted element, firing due evaluations first.

        Mirrors ``run_stream`` exactly: evaluations strictly before this
        arrival must not see it — that discipline is what makes service
        emissions byte-identical to an offline run on the same elements.
        """
        obs = self.obs

        def ingest():
            if self._resilient:
                # The resilient runtime advances internally (reorder
                # buffers release ripe elements in their own order).
                self.engine.ingest_element(element, stream)
            else:
                self.engine.advance_to(element.instant - 1)
                self.engine.ingest_element(element, stream)

        if obs.enabled:
            with obs.tracer.span(
                "service_push", tenant=self.name, stream=stream,
                instant=element.instant,
            ):
                self._contained(ingest)
            obs.registry.inc(f"service.tenant.{self.name}.events")
        else:
            self._contained(ingest)
        self.metrics.events += 1

    def advance(self, until: int) -> None:
        """Fire every due evaluation with ET instant <= ``until``."""
        if self._resilient:
            self._contained(lambda: self.engine.flush(until))
        else:
            self._contained(lambda: self.engine.advance_to(until))

    # -- status / checkpoint -----------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The tenant's unified status document plus its service section."""
        document = self.engine.unified_status()
        document["service"] = self.service_status()
        return document

    def service_status(self) -> Dict[str, Any]:
        return {
            "tenant": self.name,
            "quarantined": self.quarantined,
            "quotas": self.quotas.as_dict(),
            "admission": self.bucket.as_dict(),
            "metrics": self.metrics.as_dict(),
            "queries": {
                name: {
                    "buffered": len(log),
                    "next_event_id": log.next_id,
                    "evicted": log.evicted,
                }
                for name, log in self.logs.items()
            },
        }

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot this tenant's engine + emission offsets to JSON.

        Rides on the PR 1 checkpoint format: the ``engine`` payload is
        :func:`~repro.runtime.checkpoint.engine_to_dict` output for core
        stacks, or the full :meth:`ResilientEngine.checkpoint` document
        for resilient ones.  Emission logs persist their *offsets* only
        (``next_event_id``), so Last-Event-ID cursors stay monotonic
        across a restore while buffered rows are rebuilt by replay.
        """
        self.metrics.checkpoints += 1
        return {
            "version": TENANT_CHECKPOINT_VERSION,
            "tenant": self.name,
            "kind": "resilient" if self._resilient else "core",
            "engine": (
                self.engine.checkpoint() if self._resilient
                else engine_to_dict(self.engine)
            ),
            "queries": {
                name: {
                    "next_event_id": log.next_id,
                    "skip_empty": self.sinks[name].skip_empty,
                }
                for name, log in self.logs.items()
            },
        }

    def restore(self, document: Dict[str, Any]) -> None:
        """Rebuild the engine from a :meth:`checkpoint` document.

        Clears the quarantine fence and reattaches a fresh bounded log
        (seeded at the checkpointed event-id offset) to every restored
        query.
        """
        from repro.errors import CheckpointError

        version = document.get("version")
        if version != TENANT_CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported tenant checkpoint version {version!r}"
            )
        self.close()
        resilient = document.get("kind") == "resilient"
        if resilient:
            engine = ResilientEngine.from_checkpoint(document["engine"])
        else:
            engine = engine_from_dict(document["engine"])
        offsets = document.get("queries", {})
        logs: Dict[str, EmissionLog] = {}
        sinks: Dict[str, ServiceSink] = {}
        for name in engine.query_names:
            entry = offsets.get(name, {})
            log = EmissionLog(
                self.quotas.max_buffered_emissions,
                next_id=int(entry.get("next_event_id", 0)),
            )
            logs[name] = log
            sink = ServiceSink(
                log,
                skip_empty=bool(entry.get("skip_empty", False)),
                on_append=self._count_emission,
            )
            sinks[name] = sink
            if resilient:
                # Re-wrap so the restored delivery layer (retries,
                # breaker) still fronts the service sink.
                engine.engine.registered(name).sink = engine._wrap_sink(sink)
            else:
                engine.registered(name).sink = sink
        self.engine = engine
        self.logs = logs
        self.sinks = sinks
        self.failures = 0
        self.quarantined = False
        self.metrics.restores += 1

    def close(self) -> None:
        """Release engine resources (worker pools) and wake consumers."""
        for log in self.logs.values():
            log.close()
        core = self._core
        close = getattr(core, "close", None)
        if callable(close):
            close()


class TenantManager:
    """Service-wide tenant registry + auth boundary + snapshots."""

    def __init__(
        self,
        specs: Optional[Dict[str, TenantSpec]] = None,
        allow_dynamic_tenants: bool = False,
        default_quotas: Optional[TenantQuotas] = None,
        default_engine: Optional[EngineConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.allow_dynamic_tenants = allow_dynamic_tenants
        self.default_quotas = default_quotas or TenantQuotas()
        self.default_engine = default_engine
        self._clock = clock
        self.authenticator = Authenticator()
        self.tenants: Dict[str, TenantState] = {}
        for spec in (specs or {}).values():
            self.add(spec)

    def add(self, spec: TenantSpec) -> TenantState:
        if spec.name in self.tenants:
            raise QuotaExceededError(
                f"tenant {spec.name!r} already exists"
            )
        state = TenantState(spec, clock=self._clock)
        self.tenants[spec.name] = state
        self.authenticator.set_token(spec.name, spec.token)
        return state

    def get(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            if not self.allow_dynamic_tenants:
                raise UnknownTenantError(f"unknown tenant {name!r}")
            state = self.add(TenantSpec(
                name=name,
                quotas=self.default_quotas,
                engine=self.default_engine,
            ))
        return state

    def authorize(self, name: str, authorization: Optional[str]) -> TenantState:
        """Resolve + authenticate one tenant-scoped request."""
        state = self.get(name)
        from repro.errors import AuthenticationError

        try:
            self.authenticator.check(name, authorization)
        except AuthenticationError:
            state.metrics.auth_failures += 1
            raise
        state.metrics.requests += 1
        return state

    def snapshot(self) -> Dict[str, Any]:
        """One JSON document checkpointing every tenant."""
        return {
            "version": TENANT_CHECKPOINT_VERSION,
            "tenants": {
                name: state.checkpoint()
                for name, state in self.tenants.items()
            },
        }

    def restore_snapshot(self, document: Dict[str, Any]) -> None:
        for name, tenant_doc in document.get("tenants", {}).items():
            state = self.get(name)
            state.restore(tenant_doc)

    def status(self) -> Dict[str, Any]:
        return {
            name: state.service_status()
            for name, state in self.tenants.items()
        }

    def close(self) -> None:
        for state in self.tenants.values():
            state.close()
