"""The long-running asyncio HTTP/1.1 service fronting ``build_engine``.

A deliberately dependency-free server (``asyncio.start_server`` + a
hand-rolled HTTP/1.1 request loop): register Seraph queries per tenant,
push property-graph stream events in (single JSON or NDJSON batches),
and stream emissions out over SSE with heartbeats, resumable
``Last-Event-ID`` cursors, and a slow-consumer circuit breaker.

Endpoint map (full contract in docs/SERVICE.md)::

    GET    /healthz
    GET    /status
    POST   /tenants/{t}/queries                  register (201)
    GET    /tenants/{t}/queries                  list
    DELETE /tenants/{t}/queries/{q}              deregister
    GET    /tenants/{t}/queries/{q}/emissions    SSE stream
    GET    /tenants/{t}/streams                  list derived streams
    GET    /tenants/{t}/streams/{s}/emissions    SSE on a derived stream
    POST   /tenants/{t}/streams/{s}/events       push events (202)
    POST   /tenants/{t}/advance                  fire due evaluations
    GET    /tenants/{t}/status                   unified status + service
    GET    /tenants/{t}/checkpoint               snapshot to JSON
    POST   /tenants/{t}/restore                  rebuild from a snapshot

Every ``/tenants/{t}/...`` request crosses the bearer-token auth
boundary; typed :class:`~repro.errors.ServiceError` subclasses map 1:1
onto HTTP status codes (401/403/404/409/429/503).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.api import EngineConfig
from repro.errors import (
    CheckpointError,
    ConsumerLagError,
    DataflowError,
    EngineError,
    OutOfOrderEventError,
    PoisonMessageError,
    QueryRegistryError,
    ReproError,
    SeraphSemanticError,
    CypherError,
    ServiceError,
)
from repro.runtime.engine import decode_item
from repro.service.sse import HEARTBEAT_FRAME, format_event
from repro.service.tenants import (
    TenantManager,
    TenantQuotas,
    TenantSpec,
    TenantState,
)
from repro.stream.window import ActiveSubstreamPolicy

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

SERVICE_SCHEMA = {"name": "repro.service", "version": 1}


def engine_config_from_dict(data: Dict[str, Any]) -> EngineConfig:
    """An :class:`EngineConfig` from a JSON configuration fragment.

    Accepts the scalar subset of the config fields (``policy`` by name);
    unset fields fall through :meth:`EngineConfig.from_env` — so the
    precedence for a served tenant is config file > environment >
    default, the same rule as everywhere else.
    """
    overrides = dict(data)
    policy = overrides.pop("policy", None)
    if policy is not None:
        try:
            overrides["policy"] = ActiveSubstreamPolicy[str(policy).upper()]
        except KeyError:
            raise EngineError(f"unknown active-substream policy {policy!r}")
    known = {f for f in EngineConfig.__dataclass_fields__}
    unknown = set(overrides) - known
    if unknown:
        raise EngineError(
            f"unknown engine config fields: {sorted(unknown)}"
        )
    return EngineConfig.from_env(**overrides)


def tenant_spec_from_dict(name: str, data: Dict[str, Any]) -> TenantSpec:
    """One tenant's configuration-file entry -> :class:`TenantSpec`."""
    return TenantSpec(
        name=name,
        token=data.get("token"),
        quotas=TenantQuotas.from_dict(data.get("quotas", {})),
        engine=(
            engine_config_from_dict(data["engine"])
            if data.get("engine") is not None else None
        ),
    )


@dataclass
class ServiceConfig:
    """Everything one service process needs, declaratively."""

    host: str = "127.0.0.1"
    port: int = 8080
    tenants: Dict[str, TenantSpec] = field(default_factory=dict)
    allow_dynamic_tenants: bool = False
    default_quotas: TenantQuotas = field(default_factory=TenantQuotas)
    default_engine: Optional[EngineConfig] = None
    #: Idle seconds between SSE comment frames keeping proxies awake.
    heartbeat_seconds: float = 15.0
    #: Per-write backpressure bound on SSE consumers: a consumer that
    #: cannot drain one frame within this window is circuit-broken.
    drain_timeout: float = 5.0
    max_body_bytes: int = 8 * 1024 * 1024
    request_timeout: float = 30.0
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def from_dict(cls, data: Dict[str, Any], **overrides) -> "ServiceConfig":
        values: Dict[str, Any] = {}
        for key in ("host", "port", "allow_dynamic_tenants",
                    "heartbeat_seconds", "drain_timeout",
                    "max_body_bytes", "request_timeout"):
            if key in data:
                values[key] = data[key]
        values["tenants"] = {
            name: tenant_spec_from_dict(name, entry)
            for name, entry in data.get("tenants", {}).items()
        }
        if "default_quotas" in data:
            values["default_quotas"] = TenantQuotas.from_dict(
                data["default_quotas"]
            )
        if data.get("default_engine") is not None:
            values["default_engine"] = engine_config_from_dict(
                data["default_engine"]
            )
        values.update(overrides)
        return cls(**values)

    @classmethod
    def from_file(cls, path: str, **overrides) -> "ServiceConfig":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle), **overrides)


class _HttpRequest:
    """One parsed request (method, path parts, headers, body, query)."""

    __slots__ = ("method", "path", "parts", "headers", "body", "params")

    def __init__(self, method: str, target: str,
                 headers: Dict[str, str], body: bytes):
        self.method = method
        split = urlsplit(target)
        self.path = split.path
        self.parts = [unquote(part)
                      for part in split.path.split("/") if part]
        self.headers = headers
        self.body = body
        self.params = parse_qs(split.query)

    def param(self, name: str) -> Optional[str]:
        values = self.params.get(name)
        return values[0] if values else None

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PoisonMessageError(f"request body is not valid JSON: {exc}")


def _error_status(exc: Exception) -> int:
    if isinstance(exc, ServiceError):
        return exc.status
    if isinstance(exc, DataflowError):
        return exc.status  # 409 cycles, 404 unknown streams, else 400
    if isinstance(exc, (CypherError, SeraphSemanticError,
                        PoisonMessageError, CheckpointError)):
        return 400
    if isinstance(exc, OutOfOrderEventError):
        return 409
    if isinstance(exc, QueryRegistryError):
        return 409
    return 500


class SeraphService:
    """The service: one :class:`TenantManager` behind an asyncio server."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.manager = TenantManager(
            specs=self.config.tenants,
            allow_dynamic_tenants=self.config.allow_dynamic_tenants,
            default_quotas=self.config.default_quotas,
            default_engine=self.config.default_engine,
            clock=self.config.clock,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._running = False
        self._started_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("service is already started")
        self._running = True
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, wake + close every SSE
        consumer, release tenant engines (worker pools included)."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for tenant in self.manager.tenants.values():
            for log in tenant.logs.values():
                log.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        self.manager.close()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection handling -----------------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request = await self._read_request(reader, writer)
        if request is None:
            return
        try:
            await self._dispatch(request, writer)
        except ReproError as exc:
            self._respond_error(writer, exc)
        await writer.drain()

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_HttpRequest]:
        timeout = self.config.request_timeout
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line or not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            self._respond(writer, 400, {"error": "malformed request line"})
            return None
        headers: Dict[str, str] = {}
        while True:
            header_line = await asyncio.wait_for(reader.readline(), timeout)
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            self._respond(
                writer, 400,
                {"error": "chunked transfer encoding is not supported"},
            )
            return None
        length = int(headers.get("content-length", "0") or 0)
        if length > self.config.max_body_bytes:
            self._respond(writer, 413, {
                "error": f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            })
            return None
        body = await asyncio.wait_for(
            reader.readexactly(length), timeout
        ) if length else b""
        return _HttpRequest(method.upper(), target, headers, body)

    # -- responses ---------------------------------------------------------

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str = "application/json",
    ) -> None:
        body = (
            payload if isinstance(payload, bytes)
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    def _respond_error(
        self, writer: asyncio.StreamWriter, exc: Exception
    ) -> None:
        status = _error_status(exc)
        self._respond(writer, status, {
            "error": str(exc), "type": type(exc).__name__,
        })

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        parts = request.parts
        method = request.method
        if parts == ["healthz"] and method == "GET":
            self._respond(writer, 200, {"ok": True})
            return
        if parts == ["status"] and method == "GET":
            self._respond(writer, 200, self._service_status())
            return
        if len(parts) >= 2 and parts[0] == "tenants":
            tenant = self.manager.authorize(
                parts[1], request.headers.get("authorization")
            )
            rest = parts[2:]
            handler = self._tenant_route(method, rest)
            if handler is not None:
                await handler(request, writer, tenant, rest)
                return
        self._respond(writer, 404, {
            "error": f"no route for {method} {request.path}"
        })

    def _tenant_route(self, method: str, rest: List[str]):
        if rest == ["queries"] and method == "POST":
            return self._handle_register
        if rest == ["queries"] and method == "GET":
            return self._handle_list_queries
        if len(rest) == 2 and rest[0] == "queries" and method == "DELETE":
            return self._handle_deregister
        if (len(rest) == 3 and rest[0] == "queries"
                and rest[2] == "emissions" and method == "GET"):
            return self._handle_emissions
        if rest == ["streams"] and method == "GET":
            return self._handle_list_streams
        if (len(rest) == 3 and rest[0] == "streams"
                and rest[2] == "emissions" and method == "GET"):
            return self._handle_stream_emissions
        if (len(rest) == 3 and rest[0] == "streams"
                and rest[2] == "events" and method == "POST"):
            return self._handle_events
        if rest == ["advance"] and method == "POST":
            return self._handle_advance
        if rest == ["status"] and method == "GET":
            return self._handle_tenant_status
        if rest == ["checkpoint"] and method == "GET":
            return self._handle_checkpoint
        if rest == ["restore"] and method == "POST":
            return self._handle_restore
        return None

    # -- handlers ----------------------------------------------------------

    async def _handle_register(
        self, request: _HttpRequest, writer, tenant: TenantState, rest
    ) -> None:
        content_type = request.headers.get("content-type", "")
        if "json" in content_type:
            payload = request.json()
            if not isinstance(payload, dict) or "query" not in payload:
                raise PoisonMessageError(
                    'JSON register payloads need a "query" field'
                )
            text = payload["query"]
            skip_empty = bool(payload.get("skip_empty", False))
        else:
            text = request.body.decode("utf-8")
            skip_empty = False
        handle = tenant.register_query(text, skip_empty=skip_empty)
        self._respond(writer, 201, {
            "query": handle.name,
            "tenant": tenant.name,
            "warnings": [str(warning) for warning in handle.warnings],
            "delta_reason": handle.delta_reason,
        })

    async def _handle_list_queries(
        self, request, writer, tenant: TenantState, rest
    ) -> None:
        self._respond(writer, 200, {
            "tenant": tenant.name,
            "queries": tenant.service_status()["queries"],
        })

    async def _handle_list_streams(
        self, request, writer, tenant: TenantState, rest
    ) -> None:
        self._respond(writer, 200, {
            "tenant": tenant.name,
            "streams": tenant.derived_streams(),
        })

    async def _handle_deregister(
        self, request, writer, tenant: TenantState, rest
    ) -> None:
        name = rest[1]
        try:
            tenant.deregister_query(name)
        except QueryRegistryError as exc:
            self._respond(writer, 404, {
                "error": str(exc), "type": type(exc).__name__,
            })
            return
        self._respond(writer, 200, {"deregistered": name})

    async def _handle_events(
        self, request: _HttpRequest, writer, tenant: TenantState, rest
    ) -> None:
        stream = rest[1]
        raw = request.body.decode("utf-8")
        try:
            document = json.loads(raw)
            payloads: List[Any] = (
                document if isinstance(document, list) else [document]
            )
        except json.JSONDecodeError:
            # NDJSON batch: one event object per line.
            payloads = [line for line in raw.splitlines() if line.strip()]
        if not payloads:
            raise PoisonMessageError("no events in request body")
        tenant.admit(len(payloads))
        # Decode everything first: a malformed batch is rejected whole
        # (400) before any element reaches the engine.
        elements = [decode_item(payload) for payload in payloads]
        ingested = 0
        try:
            for element in elements:
                tenant.push(element, stream)
                ingested += 1
        except ReproError as exc:
            self._respond(writer, _error_status(exc), {
                "error": str(exc), "type": type(exc).__name__,
                "ingested": ingested,
            })
            return
        self._respond(writer, 202, {
            "ingested": ingested,
            "stream": stream,
            "watermark": tenant._core._watermark,
        })

    async def _handle_advance(
        self, request: _HttpRequest, writer, tenant: TenantState, rest
    ) -> None:
        payload = request.json()
        if not isinstance(payload, dict) or not isinstance(
                payload.get("until"), int):
            raise PoisonMessageError(
                'advance payloads need an integer "until" field'
            )
        tenant.advance(payload["until"])
        self._respond(writer, 200, {"advanced_to": payload["until"]})

    async def _handle_tenant_status(
        self, request, writer, tenant: TenantState, rest
    ) -> None:
        self._respond(writer, 200, tenant.status())

    async def _handle_checkpoint(
        self, request, writer, tenant: TenantState, rest
    ) -> None:
        self._respond(writer, 200, tenant.checkpoint())

    async def _handle_restore(
        self, request: _HttpRequest, writer, tenant: TenantState, rest
    ) -> None:
        document = request.json()
        if not isinstance(document, dict):
            raise PoisonMessageError("restore payload is not an object")
        tenant.restore(document)
        self._respond(writer, 200, {
            "restored": tenant.name,
            "queries": tenant.query_names,
        })

    # -- SSE ---------------------------------------------------------------

    async def _handle_emissions(
        self, request: _HttpRequest, writer: asyncio.StreamWriter,
        tenant: TenantState, rest: List[str],
    ) -> None:
        query_name = rest[1]
        try:
            log = tenant.log_for(query_name)
        except ReproError as exc:
            self._respond(writer, 404, {
                "error": str(exc), "type": type(exc).__name__,
            })
            return
        await self._serve_sse(request, writer, tenant, log)

    async def _handle_stream_emissions(
        self, request: _HttpRequest, writer: asyncio.StreamWriter,
        tenant: TenantState, rest: List[str],
    ) -> None:
        # Raises UnknownStreamError (404) for non-derived streams.
        log = tenant.stream_log(rest[1])
        await self._serve_sse(request, writer, tenant, log)

    async def _serve_sse(
        self, request: _HttpRequest, writer: asyncio.StreamWriter,
        tenant: TenantState, log,
    ) -> None:
        """Shared SSE body: cursor parse, headers, then the stream loop."""
        last_id = -1
        raw_cursor = request.headers.get(
            "last-event-id", request.param("last_event_id")
        )
        if raw_cursor is not None:
            try:
                last_id = int(raw_cursor)
            except ValueError:
                raise PoisonMessageError(
                    f"Last-Event-ID {raw_cursor!r} is not an integer"
                )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        await self._stream_emissions(writer, tenant, log, last_id)

    async def _stream_emissions(
        self, writer: asyncio.StreamWriter, tenant: TenantState,
        log, last_id: int,
    ) -> None:
        """The consumer loop: backlog, then wait/heartbeat, forever.

        Backpressure contract: the emission log is the *only* buffer.  A
        consumer that cannot drain a frame within ``drain_timeout``, or
        whose cursor falls off the bounded log, is circuit-broken
        (disconnected + counted as shed) — per-consumer buffers never
        grow unbounded, and one slow consumer cannot perturb anyone
        else's stream.
        """
        heartbeat = self.config.heartbeat_seconds
        try:
            while self._running:
                try:
                    entries = log.after(last_id)
                except ConsumerLagError as exc:
                    writer.write(format_event(
                        json.dumps({"error": str(exc)}), event="shed",
                    ))
                    await self._drain_or_shed(writer)
                    self._shed(tenant)
                    return
                for entry_id, data in entries:
                    writer.write(format_event(
                        data, event_id=entry_id, event="emission",
                    ))
                    if not await self._drain_or_shed(writer):
                        self._shed(tenant)
                        return
                    last_id = entry_id
                if log.next_id - 1 > last_id:
                    continue  # appended while we were draining
                try:
                    await asyncio.wait_for(log.wait(), heartbeat)
                except asyncio.TimeoutError:
                    writer.write(HEARTBEAT_FRAME)
                    if not await self._drain_or_shed(writer):
                        self._shed(tenant)
                        return
        except (ConnectionError, OSError):
            pass

    async def _drain_or_shed(self, writer: asyncio.StreamWriter) -> bool:
        """Await the transport drain, bounded; False = shed this consumer."""
        try:
            await asyncio.wait_for(
                writer.drain(), self.config.drain_timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return False
        return True

    def _shed(self, tenant: TenantState) -> None:
        tenant.metrics.shed_consumers += 1
        if tenant.obs.enabled:
            tenant.obs.registry.inc(
                f"service.tenant.{tenant.name}.shed_consumers"
            )

    # -- status ------------------------------------------------------------

    def _service_status(self) -> Dict[str, Any]:
        return {
            "schema": dict(SERVICE_SCHEMA),
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None else None
            ),
            "connections": len(self._connections),
            "tenants": self.manager.status(),
        }


async def run_service(config: ServiceConfig) -> Tuple[SeraphService, int]:
    """Start a service and return it with its bound port (test helper)."""
    service = SeraphService(config)
    await service.start()
    return service, service.port
