"""Command-line interface: run Seraph queries over recorded streams.

Usage (installed as a module)::

    python -m repro run QUERY.seraph STREAM.jsonl [--until ISO] \
        [--policy trailing|formal] [--all]
    python -m repro explain QUERY.seraph
    python -m repro validate QUERY.seraph
    python -m repro oneshot QUERY.cypher GRAPH.json
    python -m repro serve [--port N] [--tenants-config FILE] \
        [--allow-dynamic-tenants] [--snapshot FILE]

Streams are JSON-lines files (one ``{"instant": ..., "graph": ...}`` per
line, the format of :mod:`repro.graph.io`); graphs are JSON documents.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import EngineConfig, build_engine
from repro.cypher import run_cypher
from repro.errors import ReproError
from repro.graph.io import graph_from_json, stream_from_jsonl
from repro.graph.temporal import parse_datetime
from repro.seraph import CollectingSink, parse_seraph
from repro.seraph.explain import explain
from repro.stream.window import ActiveSubstreamPolicy

_POLICIES = {
    "trailing": ActiveSubstreamPolicy.TRAILING,
    "formal": ActiveSubstreamPolicy.EARLIEST_CONTAINING,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run Seraph continuous queries over recorded "
        "property graph streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a continuous query")
    run.add_argument("query", help="path to a REGISTER QUERY file")
    run.add_argument("stream", help="path to a JSON-lines stream file")
    run.add_argument("--until", help="final instant (ISO-8601 datetime)")
    run.add_argument(
        "--policy", choices=sorted(_POLICIES), default="trailing",
        help="active-substream policy (DESIGN.md §3)",
    )
    run.add_argument(
        "--all", action="store_true",
        help="print empty emissions too",
    )
    run.add_argument(
        "--incremental-eval",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate eligible queries incrementally from window deltas "
        "(--no-incremental-eval re-matches every snapshot: the ablation "
        "baseline, docs/INCREMENTAL.md)",
    )
    run.add_argument(
        "--graph-backend", choices=["reference", "columnar"], default=None,
        help="window snapshot implementation: the reference dict-based "
        "PropertyGraph or the interned array-backed columnar core "
        "(emissions are byte-identical; default defers to the "
        "REPRO_GRAPH_BACKEND environment variable, docs/COLUMNAR.md)",
    )
    run.add_argument(
        "--vectorized",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="prune matcher candidates set-at-a-time from label/property "
        "id columns before the per-candidate walk (emissions are "
        "byte-identical; default defers to REPRO_VECTORIZED, and to "
        "on under the columnar backend, docs/VECTORIZED.md)",
    )
    run.add_argument(
        "--parallel", nargs="?", const=0, type=int, default=None,
        metavar="N",
        help="offload expensive evaluations to N worker processes "
        "(bare --parallel sizes the pool to the CPU count; emissions "
        "are identical to the serial engine, docs/PARALLEL.md)",
    )
    run.add_argument(
        "--max-worker-restarts", type=int, default=None, metavar="N",
        help="crash budget for the supervised worker pool: pool rebuilds "
        "tolerated before degrading to in-parent serial execution "
        "(parallel runs; docs/SUPERVISION.md)",
    )
    run.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="enable the seeded chaos harness: kill workers mid-task, "
        "delay/drop task results, inject poison payloads and sink "
        "failures, all deterministically from SEED "
        "(docs/SUPERVISION.md)",
    )
    run.add_argument(
        "--resilient", action="store_true",
        help="run behind the fault-tolerant runtime "
        "(poison quarantine, reordering, sink isolation)",
    )
    run.add_argument(
        "--allowed-lateness", type=int, default=0, metavar="SECONDS",
        help="out-of-order tolerance in stream seconds (implies "
        "--resilient)",
    )
    run.add_argument(
        "--on-poison", choices=["fail-fast", "skip", "dead-letter"],
        default="dead-letter",
        help="policy for malformed stream payloads (resilient runs)",
    )
    run.add_argument(
        "--on-late", choices=["fail-fast", "skip", "dead-letter"],
        default="dead-letter",
        help="policy for events beyond the allowed lateness",
    )
    run.add_argument(
        "--dead-letters", metavar="PATH",
        help="write the dead-letter quarantine as JSON lines",
    )
    run.add_argument(
        "--checkpoint-out", metavar="PATH",
        help="save an engine checkpoint after the run (implies "
        "--resilient)",
    )
    run.add_argument(
        "--restore", metavar="PATH",
        help="resume from a checkpoint instead of a fresh engine "
        "(implies --resilient)",
    )
    run.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the unified status document after the run — JSON by "
        "default, Prometheus text exposition when PATH ends in .prom "
        "(implies observability; docs/OBSERVABILITY.md)",
    )
    run.add_argument(
        "--trace-out", metavar="PATH",
        help="write the run's trace (span forest) as schema-stamped "
        "JSON (implies observability)",
    )
    run.add_argument(
        "--explain-analyze", action="store_true",
        help="print EXPLAIN plus observed per-stage timings to stderr "
        "after the run (implies observability)",
    )
    run.add_argument(
        "--explain-dataflow", action="store_true",
        help="print the dataflow DAG (stages, EMIT INTO streams, "
        "per-edge emission counts) to stderr after the run "
        "(implies observability; docs/DATAFLOW.md)",
    )
    run.add_argument(
        "--profile", nargs="?", const="", metavar="PATH", default=None,
        help="profile the run with cProfile: print the top functions to "
        "stderr, and dump binary pstats data to PATH when given",
    )

    exp = commands.add_parser("explain", help="show the execution outline")
    exp.add_argument("query", help="path to a REGISTER QUERY file")

    val = commands.add_parser("validate", help="parse-check a query file")
    val.add_argument("query", help="path to a REGISTER QUERY file")

    one = commands.add_parser(
        "oneshot", help="run a one-time Cypher query over a graph"
    )
    one.add_argument("query", help="path to a Cypher query file")
    one.add_argument("graph", help="path to a JSON graph file")

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant continuous-query HTTP service "
        "(docs/SERVICE.md)",
    )
    # Explicit flag > --tenants-config file > ServiceConfig default —
    # the same precedence rule as the engine knobs, so every default
    # is None here and resolution happens in _cmd_serve.
    serve.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port, default 8080 "
        "(0 binds an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--tenants-config", metavar="FILE",
        help="JSON service configuration (tenants, tokens, quotas, "
        "engine settings; docs/SERVICE.md has the schema)",
    )
    serve.add_argument(
        "--allow-dynamic-tenants", action="store_true", default=None,
        help="auto-create unknown tenants on first use (open tenants "
        "with default quotas; otherwise unknown tenants answer 404)",
    )
    serve.add_argument(
        "--snapshot", metavar="FILE",
        help="service snapshot file: restored on startup when present, "
        "written on clean shutdown (tenant checkpoint format)",
    )
    serve.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="idle interval between SSE heartbeat comments "
        "(default 15)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="SSE backpressure bound: consumers that cannot drain one "
        "frame within this window are circuit-broken (default 5)",
    )
    return parser


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _wants_resilient(args: argparse.Namespace) -> bool:
    return bool(
        args.resilient
        or args.allowed_lateness
        or args.dead_letters
        or args.checkpoint_out
        or args.restore
        or args.on_poison != "dead-letter"
        or args.on_late != "dead-letter"
        # Chaos injects poison payloads and sink failures; only the
        # resilient runtime is built to absorb them.
        or args.chaos_seed is not None
    )


def _wants_observability(args: argparse.Namespace) -> bool:
    return bool(args.metrics_out or args.trace_out or args.explain_analyze
                or args.explain_dataflow)


def _run_config(args: argparse.Namespace) -> EngineConfig:
    """One declarative config for everything the run flags describe.

    Resolved through :meth:`EngineConfig.from_env` so the precedence is
    the documented one everywhere: explicit flag > ``REPRO_*``
    environment variable > default (table in docs/API.md).  Flags the
    user did not pass are simply omitted, letting the environment fill
    them in.
    """
    from repro.runtime import FaultPolicy
    from repro.runtime.faults import ChaosConfig

    overrides = dict(
        policy=_POLICIES[args.policy],
        delta_eval=args.incremental_eval,
        max_worker_restarts=args.max_worker_restarts,
        chaos=(
            ChaosConfig.profile(args.chaos_seed)
            if args.chaos_seed is not None else None
        ),
        resilient=_wants_resilient(args),
        allowed_lateness=args.allowed_lateness,
        poison_policy=FaultPolicy.parse(args.on_poison),
        late_policy=FaultPolicy.parse(args.on_late),
        observability=_wants_observability(args),
    )
    for name, value in (
        ("graph_backend", args.graph_backend),
        ("vectorized", args.vectorized),
        ("parallel_workers", args.parallel),
    ):
        if value is not None:
            overrides[name] = value
    return EngineConfig.from_env(**overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    if _wants_resilient(args):
        return _cmd_run_resilient(args)
    query = parse_seraph(_read(args.query))
    elements = stream_from_jsonl(_read(args.stream))
    until = parse_datetime(args.until) if args.until else None
    engine = build_engine(_run_config(args))
    sink = CollectingSink()
    engine.register(query, sink=sink)
    try:
        with _maybe_profiled(args):
            engine.run_stream(elements, until=until)
    finally:
        # The pool may also come from REPRO_PARALLEL_WORKERS, so probe
        # the built engine rather than the --parallel flag.
        if hasattr(engine, "close"):
            engine.close()
            print(engine.parallel_metrics.render(), file=sys.stderr)
            print(engine.supervisor.render(), file=sys.stderr)
    _print_emissions(args, sink)
    _write_observability(args, engine, query.name)
    return 0


def _cmd_run_resilient(args: argparse.Namespace) -> int:
    from repro.runtime import FaultPolicy, ResilientEngine

    until = parse_datetime(args.until) if args.until else None
    if args.restore:
        engine = ResilientEngine.load_checkpoint(args.restore)
        engine.poison_policy = FaultPolicy.parse(args.on_poison)
        engine.late_policy = FaultPolicy.parse(args.on_late)
    else:
        engine = build_engine(_run_config(args))
    query = parse_seraph(_read(args.query))
    if query.name not in engine.query_names:
        engine.register(query)
    # Feed raw lines so malformed ones hit the poison policy instead of
    # aborting the whole load.
    items = [line for line in _read(args.stream).splitlines()
             if line.strip()]
    try:
        with _maybe_profiled(args):
            engine.run_stream(items, until=until)
    finally:
        inner = getattr(engine, "engine", None)
        if hasattr(inner, "close"):
            inner.close()
            print(inner.parallel_metrics.render(), file=sys.stderr)
            print(inner.supervisor.render(), file=sys.stderr)
    sink = engine.sink(query.name)
    _print_emissions(args, sink)
    print(engine.metrics.render(), file=sys.stderr)
    if args.dead_letters:
        with open(args.dead_letters, "w", encoding="utf-8") as handle:
            handle.write(engine.dead_letters.to_jsonl() + "\n")
        print(
            f"-- {len(engine.dead_letters)} dead-lettered inputs written "
            f"to {args.dead_letters}",
            file=sys.stderr,
        )
    if args.checkpoint_out:
        engine.save_checkpoint(args.checkpoint_out)
        print(f"-- checkpoint saved to {args.checkpoint_out}",
              file=sys.stderr)
    _write_observability(args, engine, query.name)
    return 0


def _maybe_profiled(args: argparse.Namespace):
    """A cProfile context when ``--profile`` was given, else a no-op."""
    from contextlib import nullcontext

    if args.profile is None:
        return nullcontext()
    from repro.obs.profile import profiled

    return profiled(
        path=args.profile or None, out=sys.stderr, top=15
    )


def _write_observability(
    args: argparse.Namespace, engine, query_name: str
) -> None:
    """Honor --metrics-out/--trace-out/--explain-analyze/--explain-dataflow."""
    if not _wants_observability(args):
        return
    from repro.obs.export import trace_document, write_json, write_prometheus
    from repro.obs.schema import unified_status
    from repro.seraph.explain import explain_analyze, explain_dataflow

    if args.metrics_out:
        if args.metrics_out.endswith(".prom"):
            write_prometheus(args.metrics_out, engine.obs.registry)
        else:
            write_json(args.metrics_out, unified_status(engine))
        print(f"-- metrics written to {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        write_json(args.trace_out, trace_document(engine.obs.tracer))
        print(f"-- trace written to {args.trace_out}", file=sys.stderr)
    if args.explain_analyze:
        print(explain_analyze(engine, query_name), file=sys.stderr)
    if args.explain_dataflow:
        print(explain_dataflow(engine), file=sys.stderr)


def _print_emissions(args: argparse.Namespace, sink: CollectingSink) -> None:
    shown = 0
    for emission in sink.emissions:
        if emission.is_empty() and not args.all:
            continue
        print(emission.render())
        shown += 1
    print(
        f"-- {len(sink.emissions)} evaluations, {shown} shown "
        f"({len(sink.non_empty())} non-empty)",
        file=sys.stderr,
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    print(explain(_read(args.query)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    query = parse_seraph(_read(args.query))
    print(f"OK: query {query.name!r} parses "
          f"({len(query.body)} body clauses)")
    return 0


def _cmd_oneshot(args: argparse.Namespace) -> int:
    graph = graph_from_json(_read(args.graph))
    table = run_cypher(_read(args.query), graph)
    print(table.render())
    print(f"-- {len(table)} rows", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import os

    from repro.service.server import SeraphService, ServiceConfig

    overrides = {
        key: value
        for key, value in (
            ("host", args.host),
            ("port", args.port),
            ("allow_dynamic_tenants", args.allow_dynamic_tenants),
            ("heartbeat_seconds", args.heartbeat),
            ("drain_timeout", args.drain_timeout),
        )
        if value is not None
    }
    if args.tenants_config:
        config = ServiceConfig.from_file(args.tenants_config, **overrides)
    else:
        config = ServiceConfig(**overrides)

    async def serve() -> None:
        service = SeraphService(config)
        await service.start()
        if args.snapshot and os.path.exists(args.snapshot):
            with open(args.snapshot, "r", encoding="utf-8") as handle:
                service.manager.restore_snapshot(json.load(handle))
            print(f"-- restored snapshot from {args.snapshot}",
                  file=sys.stderr)
        print(
            f"repro service listening on http://{config.host}:"
            f"{service.port} ({len(service.manager.tenants)} tenants"
            f"{', dynamic' if config.allow_dynamic_tenants else ''})",
            file=sys.stderr,
        )
        try:
            assert service._server is not None
            await service._server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            if args.snapshot:
                snapshot = service.manager.snapshot()
                with open(args.snapshot, "w", encoding="utf-8") as handle:
                    json.dump(snapshot, handle, sort_keys=True)
                print(f"-- snapshot written to {args.snapshot}",
                      file=sys.stderr)
            await service.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "explain": _cmd_explain,
    "validate": _cmd_validate,
    "oneshot": _cmd_oneshot,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
