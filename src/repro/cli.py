"""Command-line interface: run Seraph queries over recorded streams.

Usage (installed as a module)::

    python -m repro.cli run QUERY.seraph STREAM.jsonl [--until ISO] \
        [--policy trailing|formal] [--all]
    python -m repro.cli explain QUERY.seraph
    python -m repro.cli validate QUERY.seraph
    python -m repro.cli oneshot QUERY.cypher GRAPH.json

Streams are JSON-lines files (one ``{"instant": ..., "graph": ...}`` per
line, the format of :mod:`repro.graph.io`); graphs are JSON documents.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cypher import run_cypher
from repro.errors import ReproError
from repro.graph.io import graph_from_json, stream_from_jsonl
from repro.graph.temporal import parse_datetime
from repro.seraph import CollectingSink, SeraphEngine, parse_seraph
from repro.seraph.explain import explain
from repro.stream.window import ActiveSubstreamPolicy

_POLICIES = {
    "trailing": ActiveSubstreamPolicy.TRAILING,
    "formal": ActiveSubstreamPolicy.EARLIEST_CONTAINING,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run Seraph continuous queries over recorded "
        "property graph streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a continuous query")
    run.add_argument("query", help="path to a REGISTER QUERY file")
    run.add_argument("stream", help="path to a JSON-lines stream file")
    run.add_argument("--until", help="final instant (ISO-8601 datetime)")
    run.add_argument(
        "--policy", choices=sorted(_POLICIES), default="trailing",
        help="active-substream policy (DESIGN.md §3)",
    )
    run.add_argument(
        "--all", action="store_true",
        help="print empty emissions too",
    )

    exp = commands.add_parser("explain", help="show the execution outline")
    exp.add_argument("query", help="path to a REGISTER QUERY file")

    val = commands.add_parser("validate", help="parse-check a query file")
    val.add_argument("query", help="path to a REGISTER QUERY file")

    one = commands.add_parser(
        "oneshot", help="run a one-time Cypher query over a graph"
    )
    one.add_argument("query", help="path to a Cypher query file")
    one.add_argument("graph", help="path to a JSON graph file")
    return parser


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_run(args: argparse.Namespace) -> int:
    query = parse_seraph(_read(args.query))
    elements = stream_from_jsonl(_read(args.stream))
    until = parse_datetime(args.until) if args.until else None
    engine = SeraphEngine(policy=_POLICIES[args.policy])
    sink = CollectingSink()
    engine.register(query, sink=sink)
    engine.run_stream(elements, until=until)
    shown = 0
    for emission in sink.emissions:
        if emission.is_empty() and not args.all:
            continue
        print(emission.render())
        shown += 1
    print(
        f"-- {len(sink.emissions)} evaluations, {shown} shown "
        f"({len(sink.non_empty())} non-empty)",
        file=sys.stderr,
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    print(explain(_read(args.query)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    query = parse_seraph(_read(args.query))
    print(f"OK: query {query.name!r} parses "
          f"({len(query.body)} body clauses)")
    return 0


def _cmd_oneshot(args: argparse.Namespace) -> int:
    graph = graph_from_json(_read(args.graph))
    table = run_cypher(_read(args.query), graph)
    print(table.render())
    print(f"-- {len(table)} rows", file=sys.stderr)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "explain": _cmd_explain,
    "validate": _cmd_validate,
    "oneshot": _cmd_oneshot,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
