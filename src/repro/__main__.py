"""``python -m repro`` — the package-level entry point.

Delegates to :mod:`repro.cli`, so ``python -m repro serve`` boots the
continuous-query service and the recorded-stream subcommands keep their
``python -m repro.cli`` spelling too.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
