"""The RideAnywhere running example (Section 2) and a scalable rental
stream generator.

Encodes the exact Figure 1 stream (five events, 14:45h–15:40h, anchored on
2022-08-01 per the "day in August 2022" narrative), the Listing 1 Cypher
query, the Listing 5 Seraph query, and the expected result tables
(Tables 2, 5, 6).

Modelling notes (see DESIGN.md §3): e-bikes carry the label set
``{Bike, EBike}`` so that ``(b:Bike)`` matches them, per the paper's label
hierarchy remark; ``val_time`` properties are stored as integer instants
and rendered ``HH:MM``; rental durations are minutes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph
from repro.graph.temporal import MINUTE, TimeInstant, hhmm
from repro.graph.union import union_all
from repro.stream.stream import StreamElement

#: Day anchor for the running example's bare HH:MM times.
DAY = "2022-08-01"

STATION_LABELS = ("Station",)
BIKE_LABELS = ("Bike",)
EBIKE_LABELS = ("Bike", "EBike")

# Node identifiers: stations use their station id (1..4), vehicles their
# vehicle id (5..8) — matching the paper's merged graph of Figure 2.
_STATIONS = {1: STATION_LABELS, 2: STATION_LABELS, 3: STATION_LABELS,
             4: STATION_LABELS}
_VEHICLES = {5: EBIKE_LABELS, 6: BIKE_LABELS, 7: EBIKE_LABELS, 8: BIKE_LABELS}


def _t(text: str) -> TimeInstant:
    return hhmm(text, day=DAY)


@dataclass(frozen=True)
class _RentalEdge:
    rel_id: int
    vehicle: int
    station: int
    rel_type: str  # 'rentedAt' | 'returnedAt'
    user_id: int
    val_time: str  # HH:MM
    duration: Optional[int] = None  # minutes; returns only


# The eight relationships of Figure 2, grouped by their Figure 1 event.
_EVENTS: Tuple[Tuple[str, Tuple[_RentalEdge, ...]], ...] = (
    ("14:45", (
        _RentalEdge(1, 5, 1, "rentedAt", 1234, "14:40"),
    )),
    ("15:00", (
        _RentalEdge(2, 5, 2, "returnedAt", 1234, "14:55", duration=15),
        _RentalEdge(3, 6, 2, "rentedAt", 1234, "14:58"),
        _RentalEdge(4, 8, 2, "rentedAt", 5678, "14:58"),
    )),
    ("15:15", (
        _RentalEdge(5, 6, 3, "returnedAt", 1234, "15:13", duration=15),
    )),
    ("15:20", (
        _RentalEdge(6, 8, 3, "returnedAt", 5678, "15:15", duration=17),
        _RentalEdge(7, 7, 3, "rentedAt", 5678, "15:18"),
    )),
    ("15:40", (
        _RentalEdge(8, 7, 4, "returnedAt", 5678, "15:35", duration=17),
    )),
)


def _event_graph(edges: Tuple[_RentalEdge, ...]) -> PropertyGraph:
    builder = GraphBuilder()
    for edge in edges:
        builder.add_node(
            labels=_VEHICLES[edge.vehicle],
            properties={"id": edge.vehicle},
            node_id=edge.vehicle,
        )
        builder.add_node(
            labels=_STATIONS[edge.station],
            properties={"id": edge.station},
            node_id=edge.station,
        )
        properties = {
            "user_id": edge.user_id,
            "val_time": _t(edge.val_time),
        }
        if edge.duration is not None:
            properties["duration"] = edge.duration
        builder.add_relationship(
            edge.vehicle, edge.rel_type, edge.station,
            properties=properties, rel_id=edge.rel_id,
        )
    return builder.build()


def figure1_stream() -> List[StreamElement]:
    """The five timestamped event graphs of Figure 1."""
    return [
        StreamElement(graph=_event_graph(edges), instant=_t(arrival))
        for arrival, edges in _EVENTS
    ]


def figure2_graph() -> PropertyGraph:
    """The merged graph of Figure 2 (all events loaded into the store)."""
    return union_all(element.graph for element in figure1_stream())


#: Listing 1 — the one-time Cypher workaround, with the window bounds
#: passed as parameters ($win_start / $win_end) the way external driver
#: code would compute them (Section 3.3).
LISTING1_CYPHER = """
MATCH (b:Bike)-[r:rentedAt]->(s:Station),
      q = (b)-[:returnedAt|rentedAt*3..]-(o:Station)
WITH r, s, q, relationships(q) AS rels,
     [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
WHERE $win_start <= r.val_time AND r.val_time < $win_end
  AND ALL(e IN rels WHERE
        $win_start <= e.val_time AND e.val_time < $win_end
        AND e.user_id = r.user_id
        AND e.val_time > r.val_time
        AND (e.duration IS NULL OR e.duration < 20))
RETURN r.user_id AS user_id, s.id AS station_id,
       r.val_time AS val_time, hops
ORDER BY user_id
"""

#: Listing 5 — the Seraph continuous query ``student_trick``.
LISTING5_SERAPH = """
REGISTER QUERY student_trick STARTING AT 2022-08-01T14:45h
{
  MATCH (b:Bike)-[r:rentedAt]->(s:Station),
        q = (b)-[:returnedAt|rentedAt*3..]-(o:Station)
  WITHIN PT1H
  WITH r, s, q, relationships(q) AS rels,
       [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
  WHERE ALL(e IN rels WHERE
        e.user_id = r.user_id AND e.val_time > r.val_time AND
        (e.duration IS NULL OR e.duration < 20))
  EMIT r.user_id AS user_id, s.id AS station_id,
       r.val_time AS val_time, hops
  ON ENTERING EVERY PT5M
}
"""

#: Expected rows: Table 2 (and Table 4's data part) at the 15:40 one-time
#: evaluation, and Tables 5/6 for the continuous run.
TABLE2_EXPECTED = (
    {"user_id": 1234, "station_id": 1, "val_time": _t("14:40"), "hops": [2, 3]},
    {"user_id": 5678, "station_id": 2, "val_time": _t("14:58"), "hops": [3, 4]},
)
TABLE5_EXPECTED = (
    {"user_id": 1234, "station_id": 1, "val_time": _t("14:40"), "hops": [2, 3]},
)
TABLE5_WINDOW = (_t("14:15"), _t("15:15"))
TABLE6_EXPECTED = (
    {"user_id": 5678, "station_id": 2, "val_time": _t("14:58"), "hops": [3, 4]},
)
TABLE6_WINDOW = (_t("14:40"), _t("15:40"))

#: All evaluation instants of the running example run (14:45h .. 15:40h).
EVALUATION_INSTANTS = tuple(
    _t("14:45") + offset * 5 * MINUTE for offset in range(12)
)


# ---------------------------------------------------------------------------
# Scalable synthetic rental stream (for benchmarks)
# ---------------------------------------------------------------------------


@dataclass
class RentalStreamConfig:
    """Parameters of the synthetic RideAnywhere stream.

    ``fraud_rate`` is the fraction of users that chain free rentals (the
    pattern the continuous query hunts); everyone else produces ordinary
    rentals, some exceeding the free period.
    """

    stations: int = 20
    users: int = 50
    vehicles: int = 60
    event_period: int = 5 * MINUTE
    events: int = 48
    rentals_per_event: int = 4
    fraud_rate: float = 0.2
    seed: int = 7
    start: TimeInstant = _t("08:00")


class RentalStreamGenerator:
    """Generates a property graph stream mimicking the running example.

    Every event covers one ``event_period`` and contains the rentals and
    returns that occurred in it.  Fraudulent users return a vehicle within
    the free period and immediately rent another one at the same station;
    honest users either keep vehicles longer or stop after one rental.
    """

    def __init__(self, config: Optional[RentalStreamConfig] = None):
        self.config = config or RentalStreamConfig()
        self._rng = random.Random(self.config.seed)
        self._rel_id = 0
        self._vehicle_home: Dict[int, int] = {}
        self.fraud_users = frozenset(
            user
            for user in range(1, self.config.users + 1)
            if self._rng.random() < self.config.fraud_rate
        )

    def _next_rel_id(self) -> int:
        self._rel_id += 1
        return self._rel_id

    def _station_node_id(self, station: int) -> int:
        return station

    def _vehicle_node_id(self, vehicle: int) -> int:
        return self.config.stations + vehicle

    def stream(self) -> List[StreamElement]:
        """Materialize the whole synthetic stream."""
        return list(self.iter_stream())

    def iter_stream(self) -> Iterator[StreamElement]:
        config = self.config
        rng = self._rng
        active: List[Tuple[int, int, int, TimeInstant]] = []  # user, vehicle, stn, t
        free_vehicles = list(range(1, config.vehicles + 1))
        for event_index in range(config.events):
            arrival = config.start + (event_index + 1) * config.event_period
            period_start = arrival - config.event_period
            builder = GraphBuilder(id_offset=config.stations + config.vehicles)
            emitted = False

            def add_station(station: int) -> int:
                return builder.add_node(
                    labels=STATION_LABELS,
                    properties={"id": station},
                    node_id=self._station_node_id(station),
                )

            def add_vehicle(vehicle: int) -> int:
                labels = EBIKE_LABELS if vehicle % 3 == 0 else BIKE_LABELS
                return builder.add_node(
                    labels=labels,
                    properties={"id": vehicle},
                    node_id=self._vehicle_node_id(vehicle),
                )

            # Returns (and possible fraud re-rentals) of active rentals.
            still_active: List[Tuple[int, int, int, TimeInstant]] = []
            for user, vehicle, station, rented_at in active:
                is_fraud = user in self.fraud_users
                duration_minutes = (
                    rng.randint(10, 19) if is_fraud else rng.randint(15, 45)
                )
                return_time = rented_at + duration_minutes * MINUTE
                if return_time >= arrival:
                    still_active.append((user, vehicle, station, rented_at))
                    continue
                return_station = rng.randint(1, config.stations)
                vehicle_node = add_vehicle(vehicle)
                station_node = add_station(return_station)
                builder.add_relationship(
                    vehicle_node, "returnedAt", station_node,
                    properties={
                        "user_id": user,
                        "val_time": max(return_time, period_start),
                        "duration": duration_minutes,
                    },
                    rel_id=self._next_rel_id(),
                )
                free_vehicles.append(vehicle)
                emitted = True
                if is_fraud and free_vehicles:
                    # Chain: rent again a few minutes later, same station.
                    next_vehicle = free_vehicles.pop(0)
                    re_rent_time = min(
                        max(return_time, period_start) + 3 * MINUTE, arrival - 1
                    )
                    next_vehicle_node = add_vehicle(next_vehicle)
                    builder.add_relationship(
                        next_vehicle_node, "rentedAt", station_node,
                        properties={"user_id": user, "val_time": re_rent_time},
                        rel_id=self._next_rel_id(),
                    )
                    still_active.append(
                        (user, next_vehicle, return_station, re_rent_time)
                    )
            active = still_active

            # Fresh rentals.
            for _ in range(config.rentals_per_event):
                if not free_vehicles:
                    break
                user = rng.randint(1, config.users)
                if any(entry[0] == user for entry in active):
                    continue
                vehicle = free_vehicles.pop(0)
                station = rng.randint(1, config.stations)
                rent_time = rng.randrange(period_start, arrival)
                builder.add_relationship(
                    add_vehicle(vehicle), "rentedAt", add_station(station),
                    properties={"user_id": user, "val_time": rent_time},
                    rel_id=self._next_rel_id(),
                )
                active.append((user, vehicle, station, rent_time))
                emitted = True

            if emitted:
                yield StreamElement(graph=builder.build(), instant=arrival)


def student_trick_query(
    starting_at: str = "2022-08-01T08:05",
    within: str = "PT1H",
    every: str = "PT5M",
    policy: str = "ON ENTERING",
    max_chain: int = 3,
) -> str:
    """The Listing 5 query text with configurable window parameters.

    Unlike the verbatim Listing 5 (``*3..``, fine on the sparse Figure 1
    graph), the generated workloads bound the chain at ``max_chain`` hops:
    unbounded variable-length enumeration over dense synthetic windows is
    combinatorial, and one chained re-rental is already a violation.
    """
    return f"""
    REGISTER QUERY student_trick STARTING AT {starting_at}
    {{
      MATCH (b:Bike)-[r:rentedAt]->(s:Station),
            q = (b)-[:returnedAt|rentedAt*3..{max_chain}]-(o:Station)
      WITHIN {within}
      WITH r, s, q, relationships(q) AS rels,
           [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
      WHERE ALL(e IN rels WHERE
            e.user_id = r.user_id AND e.val_time > r.val_time AND
            (e.duration IS NULL OR e.duration < 20))
      EMIT r.user_id AS user_id, s.id AS station_id,
           r.val_time AS val_time, hops
      {policy} EVERY {every}
    }}
    """
