"""Industrial use-case workloads: micromobility, network, POLE."""

from repro.usecases.micromobility import (
    LISTING1_CYPHER,
    LISTING5_SERAPH,
    RentalStreamConfig,
    RentalStreamGenerator,
    figure1_stream,
    figure2_graph,
)
from repro.usecases.network import (
    NetworkConfig,
    NetworkStreamGenerator,
    anomalous_routes_query,
)
from repro.usecases.pole import PoleConfig, PoleStreamGenerator, crime_suspects_query

__all__ = [
    "LISTING1_CYPHER",
    "LISTING5_SERAPH",
    "NetworkConfig",
    "NetworkStreamGenerator",
    "PoleConfig",
    "PoleStreamGenerator",
    "RentalStreamConfig",
    "RentalStreamGenerator",
    "anomalous_routes_query",
    "crime_suspects_query",
    "figure1_stream",
    "figure2_graph",
]
