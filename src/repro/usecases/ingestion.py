"""Stream ingestion via MERGE statements (Section 5.2, Listing 4).

The paper's deployment loads raw Kafka messages into a Neo4j store with
MERGE-style statements (the Neo4j Kafka connector) — entities are merged
by business key, rentals/returns appended as relationships.  This module
reproduces that pipeline on our substrate:

* raw events are plain dicts (the "Kafka message" payload);
* :data:`LISTING4_RENTAL` / :data:`LISTING4_RETURN` are the ingestion
  statements (parameterized update queries);
* :class:`IngestionPipeline` applies them to one persistent
  :class:`~repro.graph.store.GraphStore` and, per delivery period, seals
  the *delta* (the relationships created in the period, with their
  endpoint nodes) into a stream element — yielding exactly the
  stream-of-property-graphs shape of Definition 5.2 while the store
  accumulates the merged graph of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cypher.updating import UpdatingQueryEvaluator
from repro.errors import CypherError, IngestionError, StreamError
from repro.graph.model import Node, PropertyGraph, Relationship
from repro.graph.store import GraphStore
from repro.graph.temporal import TimeInstant
from repro.stream.stream import StreamElement

#: Ingestion statement for a rental message (Listing 4 style).
LISTING4_RENTAL = """
MERGE (b:Bike {id: $vehicle})
MERGE (s:Station {id: $station})
CREATE (b)-[:rentedAt {user_id: $user, val_time: $time}]->(s)
"""

#: Ingestion statement for a return message.
LISTING4_RETURN = """
MERGE (b:Bike {id: $vehicle})
MERGE (s:Station {id: $station})
CREATE (b)-[:returnedAt {user_id: $user, val_time: $time,
                         duration: $duration}]->(s)
"""

#: Extra statement tagging e-bikes with the hierarchy label (DESIGN.md §3).
EBIKE_LABEL_STATEMENT = """
MATCH (b:Bike {id: $vehicle}) SET b:EBike
"""


@dataclass
class RentalMessage:
    """One raw queue message, as the stations would transmit it."""

    kind: str  # 'rental' | 'return'
    vehicle: int
    station: int
    user: int
    time: TimeInstant
    duration: Optional[int] = None  # minutes, returns only
    ebike: bool = False


#: The message kinds the Listing 4 statements can ingest.
VALID_KINDS = ("rental", "return")


def validate_message(message: RentalMessage) -> None:
    """Check one message against the ingestion contract.

    Raises :class:`~repro.errors.IngestionError` (a typed library error
    the fault policies can catch) for any violation — an unknown
    ``kind``, a return without a ``duration`` (which would reach the
    ``$duration`` parameter as null), or non-integer identifiers and
    timestamps that would corrupt the MERGE business keys.
    """
    if message.kind not in VALID_KINDS:
        raise IngestionError(
            f"unknown message kind {message.kind!r} "
            f"(expected one of {list(VALID_KINDS)})"
        )
    if message.kind == "return" and message.duration is None:
        raise IngestionError(
            "return message lacks a duration (the $duration parameter "
            "of the returnedAt statement must not be null)"
        )
    for name in ("vehicle", "station", "user", "time"):
        value = getattr(message, name)
        if isinstance(value, bool) or not isinstance(value, int):
            raise IngestionError(
                f"message field {name!r} must be an integer, "
                f"got {value!r}"
            )
    if message.duration is not None and (
        isinstance(message.duration, bool)
        or not isinstance(message.duration, int)
    ):
        raise IngestionError(
            f"message duration must be an integer, got {message.duration!r}"
        )


class IngestionPipeline:
    """Loads raw messages into a store and seals periodic delta events.

    ``store`` is the persistent merged graph (what Figure 2 shows after
    the whole stream); :meth:`seal_batch` returns the per-period event
    graph (what Figure 1 shows per arrival).
    """

    def __init__(self, period: int, start: TimeInstant):
        if period <= 0:
            raise StreamError("delivery period must be positive")
        self.period = period
        self.start = start
        self.store = GraphStore()
        self._pending: List[RentalMessage] = []
        self._sealed_until = start

    def feed(self, message: RentalMessage) -> None:
        """Accept one raw message (must not predate the queue start)."""
        if message.time < self.start:
            raise StreamError(
                f"message at {message.time} predates queue start {self.start}"
            )
        self._pending.append(message)

    def _apply(self, message: RentalMessage) -> None:
        validate_message(message)
        evaluator = UpdatingQueryEvaluator(
            self.store,
            parameters={
                "vehicle": message.vehicle,
                "station": message.station,
                "user": message.user,
                "time": message.time,
                "duration": message.duration,
            },
        )
        statement = (
            LISTING4_RENTAL if message.kind == "rental" else LISTING4_RETURN
        )
        try:
            evaluator.run(statement)
            if message.ebike:
                evaluator.run(EBIKE_LABEL_STATEMENT)
        except (KeyError, TypeError, ValueError, CypherError) as exc:
            # Malformed payloads must surface as the typed library error,
            # never as a raw evaluator exception (so dead-letter policies
            # catch exactly bad input, not programming errors).
            raise IngestionError(
                f"failed to apply {message.kind} message at "
                f"{message.time}: {exc}"
            ) from exc

    def seal_until(self, until: TimeInstant) -> List[StreamElement]:
        """Apply pending messages period by period; one element per
        non-empty period, carrying the period's delta graph."""
        elements: List[StreamElement] = []
        arrival = self._sealed_until + self.period
        while arrival <= until:
            batch = sorted(
                (
                    message
                    for message in self._pending
                    if self._sealed_until <= message.time < arrival
                ),
                key=lambda message: message.time,
            )
            self._pending = [
                message
                for message in self._pending
                if not (self._sealed_until <= message.time < arrival)
            ]
            before_rels = set(self.store.graph().relationships)
            for message in batch:
                self._apply(message)
            if batch:
                after = self.store.graph()
                new_rel_ids = set(after.relationships) - before_rels
                elements.append(
                    StreamElement(
                        graph=self._delta_graph(after, new_rel_ids),
                        instant=arrival,
                    )
                )
            self._sealed_until = arrival
            arrival += self.period
        return elements

    @staticmethod
    def _delta_graph(graph: PropertyGraph, rel_ids: set) -> PropertyGraph:
        rels: List[Relationship] = [
            graph.relationship(rel_id) for rel_id in sorted(rel_ids)
        ]
        node_ids = {rel.src for rel in rels} | {rel.trg for rel in rels}
        nodes: List[Node] = [graph.node(node_id) for node_id in
                             sorted(node_ids)]
        return PropertyGraph.of(nodes, rels)


def running_example_messages() -> List[RentalMessage]:
    """The Figure 1 narrative as raw queue messages."""
    from repro.usecases.micromobility import _t

    return [
        RentalMessage("rental", 5, 1, 1234, _t("14:40"), ebike=True),
        RentalMessage("return", 5, 2, 1234, _t("14:55"), duration=15,
                      ebike=True),
        RentalMessage("rental", 6, 2, 1234, _t("14:58")),
        RentalMessage("rental", 8, 2, 5678, _t("14:58")),
        RentalMessage("return", 6, 3, 1234, _t("15:13"), duration=15),
        RentalMessage("return", 8, 3, 5678, _t("15:15"), duration=17),
        RentalMessage("rental", 7, 3, 5678, _t("15:18"), ebike=True),
        RentalMessage("return", 7, 4, 5678, _t("15:35"), duration=17,
                      ebike=True),
    ]


def replay_running_example() -> "tuple[IngestionPipeline, List[StreamElement]]":
    """Feed the Figure 1 messages through the MERGE pipeline.

    Returns the pipeline (whose store holds the merged Figure 2 graph)
    and the sealed per-period stream elements.
    """
    from repro.usecases.micromobility import _t

    pipeline = IngestionPipeline(period=300, start=_t("14:40"))
    for message in running_example_messages():
        pipeline.feed(message)
    elements = pipeline.seal_until(_t("15:40"))
    return pipeline, elements
