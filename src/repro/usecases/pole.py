"""Crime investigation use case on the POLE model (Section 4.2).

POLE = Person-Object-Location-Event.  Surveillance sightings arrive as a
stream: persons PASSED_BY locations (with a ``val_time``), and crimes
OCCURRED_AT locations.  The continuous information need: persons who
passed by a crime scene within 30 minutes of the crime.

The generator plants ground-truth suspects so tests and benches can
verify the continuous query finds exactly them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.temporal import MINUTE, TimeInstant, parse_datetime
from repro.stream.stream import StreamElement

DEFAULT_START = parse_datetime("2022-08-01T20:00")

#: "within 30 minutes" of the crime (Table 1, second query).
PROXIMITY_WINDOW = 30 * MINUTE


@dataclass
class PoleConfig:
    persons: int = 30
    locations: int = 10
    events: int = 24
    period: int = 5 * MINUTE
    sightings_per_event: int = 6
    crime_every: int = 6  # a crime roughly every N events
    seed: int = 99
    start: TimeInstant = DEFAULT_START


class PoleStreamGenerator:
    """Synthetic POLE surveillance stream with planted crimes.

    Node ids: persons 1..P, locations 10000+ℓ, crimes 20000+k.
    Each event graph carries the sightings (and possibly one crime) of the
    preceding period.  ``ground_truth()`` returns the (person, crime)
    pairs whose sighting fell within ±30 minutes of the crime at the same
    location.
    """

    def __init__(self, config: Optional[PoleConfig] = None):
        self.config = config or PoleConfig()
        self._sightings: List[Tuple[int, int, TimeInstant]] = []
        self._crimes: List[Tuple[int, int, TimeInstant]] = []
        self._elements: Optional[List[StreamElement]] = None

    def person_node(self, person: int) -> int:
        return person

    def location_node(self, location: int) -> int:
        return 10_000 + location

    def crime_node(self, crime: int) -> int:
        return 20_000 + crime

    def stream(self) -> List[StreamElement]:
        if self._elements is None:
            self._elements = list(self._generate())
        return self._elements

    def _generate(self) -> Iterator[StreamElement]:
        config = self.config
        rng = random.Random(config.seed)
        rel_id = 0
        crime_count = 0
        for event in range(config.events):
            arrival = config.start + (event + 1) * config.period
            period_start = arrival - config.period
            builder = GraphBuilder()

            def add_person(person: int) -> int:
                return builder.add_node(
                    labels=["Person"], properties={"id": person},
                    node_id=self.person_node(person),
                )

            def add_location(location: int) -> int:
                return builder.add_node(
                    labels=["Location"], properties={"id": location},
                    node_id=self.location_node(location),
                )

            for _ in range(config.sightings_per_event):
                person = rng.randint(1, config.persons)
                location = rng.randint(1, config.locations)
                seen_at = rng.randrange(period_start, arrival)
                rel_id += 1
                builder.add_relationship(
                    add_person(person), "PASSED_BY", add_location(location),
                    properties={"val_time": seen_at}, rel_id=100_000 + rel_id,
                )
                self._sightings.append((person, location, seen_at))

            if (event + 1) % config.crime_every == 0:
                crime_count += 1
                location = rng.randint(1, config.locations)
                occurred_at = rng.randrange(period_start, arrival)
                rel_id += 1
                crime = builder.add_node(
                    labels=["Crime"],
                    properties={"id": crime_count, "category": "robbery"},
                    node_id=self.crime_node(crime_count),
                )
                builder.add_relationship(
                    crime, "OCCURRED_AT", add_location(location),
                    properties={"val_time": occurred_at}, rel_id=100_000 + rel_id,
                )
                self._crimes.append((crime_count, location, occurred_at))

            yield StreamElement(graph=builder.build(), instant=arrival)

    def ground_truth(self) -> Set[Tuple[int, int]]:
        """(person_id, crime_id) pairs a perfect detector would flag."""
        self.stream()  # ensure generated
        hits: Set[Tuple[int, int]] = set()
        for crime_id, crime_location, occurred_at in self._crimes:
            for person, location, seen_at in self._sightings:
                if location != crime_location:
                    continue
                if abs(seen_at - occurred_at) <= PROXIMITY_WINDOW:
                    hits.add((person, crime_id))
        return hits


def crime_suspects_query(
    starting_at: str = "2022-08-01T20:05",
    within: str = "PT1H",
    every: str = "PT5M",
    proximity_minutes: int = 30,
) -> str:
    """The Table 1 surveillance query: persons near a crime scene.

    ``ON ENTERING`` so each suspect sighting is reported once, when the
    evidence enters the window.
    """
    window = proximity_minutes * MINUTE
    return f"""
    REGISTER QUERY crime_suspects STARTING AT {starting_at}
    {{
      MATCH (c:Crime)-[o:OCCURRED_AT]->(l:Location)<-[s:PASSED_BY]-(p:Person)
      WITHIN {within}
      WHERE s.val_time >= o.val_time - {window}
        AND s.val_time <= o.val_time + {window}
      EMIT p.id AS person_id, c.id AS crime_id, l.id AS location_id,
           s.val_time AS seen_at
      ON ENTERING EVERY {every}
    }}
    """
