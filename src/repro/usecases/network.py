"""Network monitoring use case (Section 4.1, Listing 2).

The data center topology is modelled per the paper: a rack HOLDS a switch
that ROUTES an interface that CONNECTS a router; routers LINK to an
aggregation layer that reaches the egress router.  Every minute a full
configuration snapshot arrives as one property graph; a fault injector
occasionally drops a router uplink, forcing affected racks onto a detour
that lengthens their shortest route.

The continuous information need: routes whose length has z-score > 3
against the configured μ = 5 hops, σ = 0.3 (the paper's numbers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph
from repro.graph.temporal import MINUTE, TimeInstant, parse_datetime
from repro.stream.stream import StreamElement

#: The paper's configured route statistics.
MEAN_HOPS = 5.0
STD_HOPS = 0.3
Z_THRESHOLD = 3.0

DEFAULT_START = parse_datetime("2022-08-01T09:00")


@dataclass
class NetworkConfig:
    """Topology and stream parameters."""

    racks: int = 8
    routers: int = 4
    events: int = 30
    period: int = MINUTE
    fault_rate: float = 0.05
    # A fault must outlast the query window to become visible in the
    # snapshot *union* of configurations (older, healthy configurations
    # keep the link alive until they leave the window) — the default
    # persists longer than the 10-minute window of Listing 2.
    fault_duration: int = 12  # events a fault persists
    seed: int = 13
    start: TimeInstant = DEFAULT_START


class NetworkTopology:
    """Static id layout for one synthetic data center.

    Node ids:
      rack i            → 1000 + i
      switch of rack i  → 2000 + i
      interface of rack → 3000 + i
      router j          → 4000 + j
      aggregation router→ 5000
      egress router     → 5001

    The nominal shortest route rack→egress is 5 hops:
    rack -HOLDS- switch -ROUTES- interface -CONNECTS- router
         -LINKS- aggregation -LINKS- egress.
    The detour (used when a router's uplink is down) goes through a
    neighbouring router, adding 2 hops.
    """

    def __init__(self, config: NetworkConfig):
        self.config = config
        self.rack_ids = list(range(1, config.racks + 1))
        self.router_ids = list(range(1, config.routers + 1))

    def rack_node(self, rack: int) -> int:
        return 1000 + rack

    def switch_node(self, rack: int) -> int:
        return 2000 + rack

    def interface_node(self, rack: int) -> int:
        return 3000 + rack

    def router_node(self, router: int) -> int:
        return 4000 + router

    AGGREGATION = 5000
    EGRESS = 5001

    def router_of_rack(self, rack: int) -> int:
        return self.router_ids[(rack - 1) % len(self.router_ids)]

    def configuration_graph(self, down_uplinks: Set[int]) -> PropertyGraph:
        """One full-configuration event graph.

        ``down_uplinks`` is the set of router ids whose uplink to the
        aggregation router is currently broken; those routers instead
        reach the aggregation layer via their ring neighbour (+2 hops for
        their racks).
        """
        # Relationship identifiers must be stable per *logical link* so the
        # UNA-union of successive configurations deduplicates correctly
        # (Definition 5.4): the same cable keeps the same id in every event.
        builder = GraphBuilder()
        aggregation = builder.add_node(
            labels=["Router"], properties={"id": self.AGGREGATION, "role": "agg"},
            node_id=self.AGGREGATION,
        )
        egress = builder.add_node(
            labels=["Router"],
            properties={"id": self.EGRESS, "role": "egress", "egress": True},
            node_id=self.EGRESS,
        )
        builder.add_relationship(aggregation, "LINKS", egress, rel_id=9_999)
        router_nodes: Dict[int, int] = {}
        for router in self.router_ids:
            router_nodes[router] = builder.add_node(
                labels=["Router"],
                properties={"id": self.router_node(router), "role": "tor"},
                node_id=self.router_node(router),
            )
        for router in self.router_ids:
            if router not in down_uplinks:
                builder.add_relationship(
                    router_nodes[router], "LINKS", aggregation,
                    rel_id=10_000 + router,
                )
            # Ring links between neighbouring routers (always up) provide
            # the redundant detour the paper describes.
            neighbour = self.router_ids[router % len(self.router_ids)]
            if neighbour != router:
                builder.add_relationship(
                    router_nodes[router],
                    "LINKS",
                    router_nodes[neighbour],
                    rel_id=11_000 + router,
                )
        for rack in self.rack_ids:
            rack_node = builder.add_node(
                labels=["Rack"], properties={"id": rack}, node_id=self.rack_node(rack)
            )
            switch = builder.add_node(
                labels=["Switch"], properties={"id": rack},
                node_id=self.switch_node(rack),
            )
            interface = builder.add_node(
                labels=["Interface"], properties={"id": rack},
                node_id=self.interface_node(rack),
            )
            router = router_nodes[self.router_of_rack(rack)]
            builder.add_relationship(rack_node, "HOLDS", switch,
                                     rel_id=12_000 + rack)
            builder.add_relationship(switch, "ROUTES", interface,
                                     rel_id=13_000 + rack)
            builder.add_relationship(interface, "CONNECTS", router,
                                     rel_id=14_000 + rack)
        return builder.build()


class NetworkStreamGenerator:
    """Generates the configuration stream with injected uplink faults.

    Faults are seeded and recorded so tests can assert against ground
    truth: ``faults_at(instant)`` says which uplinks were down in the
    configuration emitted at that instant.
    """

    def __init__(self, config: Optional[NetworkConfig] = None):
        self.config = config or NetworkConfig()
        self.topology = NetworkTopology(self.config)
        self._faults: Dict[TimeInstant, Set[int]] = {}
        self._schedule = self._build_schedule()

    def _build_schedule(self) -> List[Set[int]]:
        rng = random.Random(self.config.seed)
        down_until: Dict[int, int] = {}
        schedule: List[Set[int]] = []
        for event in range(self.config.events):
            for router in self.topology.router_ids:
                if down_until.get(router, -1) >= event:
                    continue
                if rng.random() < self.config.fault_rate:
                    down_until[router] = event + self.config.fault_duration - 1
            down = {
                router
                for router, until in down_until.items()
                if until >= event
            }
            schedule.append(down)
        return schedule

    def faults_at(self, instant: TimeInstant) -> Set[int]:
        return self._faults.get(instant, set())

    def stream(self) -> List[StreamElement]:
        return list(self.iter_stream())

    def iter_stream(self) -> Iterator[StreamElement]:
        for event, down in enumerate(self._schedule):
            instant = self.config.start + (event + 1) * self.config.period
            self._faults[instant] = set(down)
            yield StreamElement(
                graph=self.topology.configuration_graph(down), instant=instant
            )


def anomalous_routes_query(
    starting_at: str = "2022-08-01T09:01",
    within: str = "PT10M",
    every: str = "PT1M",
    mean_hops: float = MEAN_HOPS,
    std_hops: float = STD_HOPS,
    z_threshold: float = Z_THRESHOLD,
) -> str:
    """Listing 2: anomalous routes by z-score against configured μ/σ.

    Reports all anomalous shortest paths at every evaluation (SNAPSHOT),
    exactly as the paper's network query does.
    """
    return f"""
    REGISTER QUERY network_anomalies STARTING AT {starting_at}
    {{
      MATCH p = shortestPath(
          (rack:Rack)-[:HOLDS|ROUTES|CONNECTS|LINKS*..20]-(egress:Router {{egress: true}}))
      WITHIN {within}
      WITH rack, p, length(p) AS hops
      WHERE (hops - {mean_hops}) / {std_hops} > {z_threshold}
      EMIT rack.id AS rack_id, hops
      SNAPSHOT EVERY {every}
    }}
    """


def anomalous_routes_query_data_driven(
    starting_at: str = "2022-08-01T09:01",
    within: str = "PT10M",
    every: str = "PT1M",
    std_hops: float = STD_HOPS,
    z_threshold: float = Z_THRESHOLD,
) -> str:
    """Variant computing μ from the window itself via ``avg()``.

    "…computes the average length of those paths in the last 10 minutes" —
    this reading derives the mean from the matched paths instead of the
    configuration; it exercises aggregation + UNWIND in a Seraph body.
    """
    return f"""
    REGISTER QUERY network_anomalies_data STARTING AT {starting_at}
    {{
      MATCH p = shortestPath(
          (rack:Rack)-[:HOLDS|ROUTES|CONNECTS|LINKS*..20]-(egress:Router {{egress: true}}))
      WITHIN {within}
      WITH rack.id AS rack_id, length(p) AS hops
      WITH avg(hops) AS mu, collect({{rack_id: rack_id, hops: hops}}) AS routes
      UNWIND routes AS route
      WITH route.rack_id AS rack_id, route.hops AS hops, mu
      WHERE (hops - mu) / {std_hops} > {z_threshold}
      EMIT rack_id, hops, mu
      SNAPSHOT EVERY {every}
    }}
    """


def pipeline_detect_query(
    starting_at: str = "2022-08-01T09:01",
    within: str = "PT10M",
    every: str = "PT1M",
    mean_hops: float = MEAN_HOPS,
    std_hops: float = STD_HOPS,
    z_threshold: float = Z_THRESHOLD,
    into: str = "route_anomalies",
) -> str:
    """Pipeline stage 1: Listing 2 detection, emitting INTO a stream.

    Same anomaly predicate as :func:`anomalous_routes_query`, but the
    emitted ``(rack_id, hops)`` rows materialize as elements of the
    derived stream ``into`` for downstream stages (docs/DATAFLOW.md).
    """
    return f"""
    REGISTER QUERY pipeline_detect STARTING AT {starting_at}
    {{
      MATCH p = shortestPath(
          (rack:Rack)-[:HOLDS|ROUTES|CONNECTS|LINKS*..20]-(egress:Router {{egress: true}}))
      WITHIN {within}
      WITH rack, p, length(p) AS hops
      WHERE (hops - {mean_hops}) / {std_hops} > {z_threshold}
      EMIT rack.id AS rack_id, hops
      SNAPSHOT EVERY {every}
      INTO {into}
    }}
    """


def pipeline_enrich_query(
    starting_at: str = "2022-08-01T09:01",
    within: str = "PT5M",
    every: str = "PT1M",
    source: str = "route_anomalies",
    into: str = "rack_alerts",
) -> str:
    """Pipeline stage 2: aggregate anomalies per rack.

    Consumes the detection stream; because materialized rows MERGE on
    their values, ``count(*)`` counts the *distinct* anomalous route
    lengths a rack showed inside the window, and ``max`` its worst one.
    """
    return f"""
    REGISTER QUERY pipeline_enrich STARTING AT {starting_at}
    {{
      MATCH (a:{source}) FROM STREAM {source}
      WITHIN {within}
      WITH a.rack_id AS rack_id, count(*) AS variants,
           max(a.hops) AS worst_hops
      EMIT rack_id, variants, worst_hops
      SNAPSHOT EVERY {every}
      INTO {into}
    }}
    """


def pipeline_alert_query(
    starting_at: str = "2022-08-01T09:01",
    within: str = "PT3M",
    every: str = "PT1M",
    source: str = "rack_alerts",
    min_hops: int = 6,
) -> str:
    """Pipeline stage 3: the terminal alert over the enrichment stream."""
    return f"""
    REGISTER QUERY pipeline_alert STARTING AT {starting_at}
    {{
      MATCH (al:{source}) FROM STREAM {source}
      WITHIN {within}
      WITH al.rack_id AS rack_id, al.variants AS variants,
           al.worst_hops AS worst_hops
      WHERE worst_hops >= {min_hops}
      EMIT rack_id, variants, worst_hops
      SNAPSHOT EVERY {every}
    }}
    """


def pipeline_queries(**kwargs) -> Tuple[str, str, str]:
    """The detect → enrich → alert pipeline, ready to register in order.

    One fused engine runs all three: stage scheduling makes every
    detection visible to the same-instant enrichment, and every
    enrichment to the same-instant alert (docs/DATAFLOW.md has the full
    walk-through; ``make test-dataflow`` pins the semantics).
    """
    return (
        pipeline_detect_query(**kwargs.get("detect", {})),
        pipeline_enrich_query(**kwargs.get("enrich", {})),
        pipeline_alert_query(**kwargs.get("alert", {})),
    )
