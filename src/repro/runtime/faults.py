"""Deterministic fault injection: the chaos harness for the runtime.

Every component here is seeded or schedule-driven, never wall-clock or
global-random dependent, so a failing test reproduces exactly:

* :class:`FailureSchedule` — decides, per call index, whether to fail
  (explicit indices, "first N", "every Kth", or a seeded random rate);
* :class:`FlakySink` — a sink that raises per schedule, recording every
  attempt and every successful delivery;
* :class:`FlakySource` — wraps a clean element sequence and injects
  poison payloads and displaced (late) events per seed;
* :class:`ChaosConfig` / :class:`ChaosInjector` — one seeded knob
  (``EngineConfig(chaos=...)``, ``--chaos-seed`` on the CLI) driving
  every fault axis at once: worker murder, delayed/dropped task
  results, and poison task bursts against the supervised process pools
  (:mod:`repro.runtime.supervisor`), plus poison payloads / displaced
  events at the source and scheduled sink failures — so tests, the CLI,
  and the chaos benchmarks share a single deterministic fault path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.seraph.sinks import CollectingSink, Emission, Sink
from repro.stream.stream import StreamElement


class InjectedSinkFailure(RuntimeError):
    """The error a :class:`FlakySink` raises on a scheduled failure."""


class ChaosPoisonError(RuntimeError):
    """The error a chaos-poisoned worker task raises.

    Must stay trivially picklable: it crosses the process boundary as a
    future's exception.  The pool supervisor treats it like any other
    task failure — retry, then degrade — which is exactly the point.
    """


class FailureSchedule:
    """Deterministic per-call failure decisions."""

    def __init__(self, fail_indices: Iterable[int] = ()):
        self._fail_indices = frozenset(fail_indices)

    @classmethod
    def never(cls) -> "FailureSchedule":
        return cls()

    @classmethod
    def first(cls, count: int) -> "FailureSchedule":
        """Fail the first ``count`` calls, then recover for good."""
        return cls(range(count))

    @classmethod
    def at(cls, *indices: int) -> "FailureSchedule":
        return cls(indices)

    @classmethod
    def every(cls, period: int, limit: int = 1000) -> "FailureSchedule":
        """Fail every ``period``-th call (0-based), up to ``limit`` calls."""
        return cls(range(0, limit, period))

    @classmethod
    def random(cls, rate: float, seed: int, limit: int = 1000
               ) -> "FailureSchedule":
        """Seeded Bernoulli failures over the first ``limit`` calls."""
        rng = random.Random(seed)
        return cls(i for i in range(limit) if rng.random() < rate)

    def should_fail(self, call_index: int) -> bool:
        return call_index in self._fail_indices

    def __repr__(self) -> str:
        shown = sorted(self._fail_indices)[:8]
        return f"FailureSchedule(fail at {shown}...)"


class FlakySink(Sink):
    """A sink that fails per schedule, then behaves.

    ``calls`` counts every ``receive`` invocation (delivery attempts);
    ``delivered`` holds the emissions that got through.  With
    ``FailureSchedule.first(n)`` this is exactly the acceptance
    scenario "fails deterministically N times then recovers".
    """

    def __init__(
        self,
        schedule: FailureSchedule,
        inner: Optional[Sink] = None,
    ):
        self.schedule = schedule
        self.inner = inner if inner is not None else CollectingSink()
        self.calls = 0
        self.failures = 0

    @property
    def delivered(self) -> List[Emission]:
        if isinstance(self.inner, CollectingSink):
            return list(self.inner.emissions)
        raise AttributeError("inner sink does not collect emissions")

    def receive(self, emission: Emission) -> None:
        index = self.calls
        self.calls += 1
        if self.schedule.should_fail(index):
            self.failures += 1
            raise InjectedSinkFailure(
                f"injected sink failure on call {index}"
            )
        self.inner.receive(emission)


class FlakySource:
    """Injects poison payloads and displaced events into a clean stream.

    Yields a mix of valid :class:`StreamElement` objects and raw payloads
    (to be fed through ``ResilientEngine.ingest_item``):

    * with probability ``poison_rate`` a poison payload from
      ``POISON_PAYLOADS`` is inserted *before* the next clean element;
    * with probability ``displace_rate`` a clean element is held back and
      re-emitted ``displace_by`` positions later — an out-of-order
      arrival the reorder buffer must re-sequence (or quarantine, when
      beyond the allowed lateness).

    The same ``seed`` always produces the same faulty sequence.
    """

    #: Representative malformed queue payloads (bad instant, missing
    #: graph, malformed graph document, wrong type entirely).
    POISON_PAYLOADS: Sequence[Any] = (
        {"instant": "not-a-number", "graph": {"nodes": [], "relationships": []}},
        {"graph": {"nodes": [], "relationships": []}},
        {"instant": 0, "graph": {"nodes": [{"labels": []}], "relationships": []}},
        "this is not json",
        {"instant": 1, "graph": "nope"},
        42,
    )

    def __init__(
        self,
        elements: Iterable[StreamElement],
        seed: int = 0,
        poison_rate: float = 0.0,
        displace_rate: float = 0.0,
        displace_by: int = 2,
    ):
        self._elements = list(elements)
        self.seed = seed
        self.poison_rate = poison_rate
        self.displace_rate = displace_rate
        self.displace_by = max(1, displace_by)

    def __iter__(self) -> Iterator[Any]:
        rng = random.Random(self.seed)
        held: List[tuple] = []  # (release_position, element)
        position = 0
        for element in self._elements:
            for release_at, late in [h for h in held]:
                if release_at <= position:
                    held.remove((release_at, late))
                    yield late
            if self.poison_rate and rng.random() < self.poison_rate:
                yield self.POISON_PAYLOADS[
                    rng.randrange(len(self.POISON_PAYLOADS))
                ]
            if self.displace_rate and rng.random() < self.displace_rate:
                held.append((position + self.displace_by, element))
            else:
                yield element
            position += 1
        for _release_at, late in sorted(held):
            yield late

    @property
    def clean_elements(self) -> List[StreamElement]:
        """The undisturbed underlying stream."""
        return list(self._elements)


# -- the unified chaos knob ---------------------------------------------------

#: Worker-side chaos directives (shipped inside the task payload).
KILL_WORKER = "kill"
DELAY_RESULT = "delay"
POISON_TASK = "poison"
#: Parent-side directive: the task runs, its result is discarded.
DROP_RESULT = "drop"

_RATE_FIELDS = (
    "worker_kill_rate", "worker_poison_rate", "result_delay_rate",
    "result_drop_rate", "source_poison_rate", "source_displace_rate",
    "sink_failure_rate",
)


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded description of every fault the harness can inject.

    Worker axis (consumed by :class:`repro.runtime.supervisor.PoolSupervisor`
    through a :class:`ChaosInjector`):

    * ``worker_kill_rate`` — probability a task's worker process calls
      ``os._exit`` mid-task, breaking the whole pool;
    * ``worker_poison_rate`` — probability a task raises
      :class:`ChaosPoisonError` instead of evaluating (a poison
      snapshot burst);
    * ``result_delay_rate`` / ``delay_seconds`` — probability a worker
      sleeps before returning;
    * ``result_drop_rate`` — probability the parent discards a
      completed task's result (a lost response).

    Stream/sink axis (consumed by :class:`~repro.runtime.ResilientEngine`
    when built with ``EngineConfig(chaos=...)``):

    * ``source_poison_rate`` / ``source_displace_rate`` /
      ``source_displace_by`` — the :class:`FlakySource` knobs;
    * ``sink_failure_rate`` — scheduled :class:`FlakySink` failures
      between the resilient delivery layer and the user sink.

    The same ``seed`` drives every axis, so one integer reproduces an
    entire chaotic run.
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    worker_poison_rate: float = 0.0
    result_delay_rate: float = 0.0
    result_drop_rate: float = 0.0
    delay_seconds: float = 0.01
    source_poison_rate: float = 0.0
    source_displace_rate: float = 0.0
    source_displace_by: int = 2
    sink_failure_rate: float = 0.0
    #: Schedule horizon for the seeded sink-failure schedule.
    limit: int = 1000

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise EngineError(f"{name} must be in [0, 1], got {rate!r}")
        if self.delay_seconds < 0:
            raise EngineError("delay_seconds must be >= 0")

    @classmethod
    def profile(cls, seed: int) -> "ChaosConfig":
        """The default CLI chaos profile (``--chaos-seed``): every axis
        on at a modest rate — survivable, but guaranteed to exercise the
        supervision and resilience machinery on any non-trivial run."""
        return cls(
            seed=seed,
            worker_kill_rate=0.05,
            worker_poison_rate=0.05,
            result_delay_rate=0.05,
            result_drop_rate=0.05,
            source_poison_rate=0.05,
            source_displace_rate=0.1,
            sink_failure_rate=0.05,
        )

    # -- what is switched on -------------------------------------------

    @property
    def wants_worker_chaos(self) -> bool:
        return bool(
            self.worker_kill_rate or self.worker_poison_rate
            or self.result_delay_rate or self.result_drop_rate
        )

    @property
    def wants_source_chaos(self) -> bool:
        return bool(self.source_poison_rate or self.source_displace_rate)

    @property
    def wants_sink_chaos(self) -> bool:
        return bool(self.sink_failure_rate)

    # -- factories for each axis ---------------------------------------

    def injector(self) -> "ChaosInjector":
        """The parent-side directive source for the pool supervisor."""
        return ChaosInjector(self)

    def source(self, items: Iterable[Any]) -> FlakySource:
        """Wrap a payload sequence in the seeded :class:`FlakySource`."""
        return FlakySource(
            items,
            seed=self.seed,
            poison_rate=self.source_poison_rate,
            displace_rate=self.source_displace_rate,
            displace_by=self.source_displace_by,
        )

    def sink_schedule(self) -> FailureSchedule:
        if not self.sink_failure_rate:
            return FailureSchedule.never()
        return FailureSchedule.random(
            self.sink_failure_rate, self.seed, self.limit
        )

    def sink(self, inner: Sink) -> FlakySink:
        """Wrap a sink in the seeded :class:`FlakySink`."""
        return FlakySink(self.sink_schedule(), inner=inner)


class ChaosInjector:
    """Seeded per-attempt directive source for the worker chaos axis.

    Lives in the parent process and is consulted once per task
    *submission attempt* (not per task), so a retried task rolls a fresh
    directive — an injected fault never deterministically re-fires on
    the retry, which is what lets chaotic runs converge.  All draws
    happen sequentially in the parent, so a given seed always produces
    the same directive sequence regardless of worker scheduling.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self.kills = 0
        self.poisons = 0
        self.delays = 0
        self.drops = 0

    def directive(self) -> Optional[Tuple]:
        """The chaos verdict for one submission attempt (or ``None``)."""
        config = self.config
        roll = self._rng.random()
        edge = config.worker_kill_rate
        if roll < edge:
            self.kills += 1
            return (KILL_WORKER,)
        edge += config.worker_poison_rate
        if roll < edge:
            self.poisons += 1
            return (POISON_TASK, self.poisons)
        edge += config.result_delay_rate
        if roll < edge:
            self.delays += 1
            return (DELAY_RESULT, config.delay_seconds)
        edge += config.result_drop_rate
        if roll < edge:
            self.drops += 1
            return (DROP_RESULT,)
        return None

    def as_dict(self) -> Dict[str, int]:
        return {
            "seed": self.config.seed,
            "kills": self.kills,
            "poisons": self.poisons,
            "delays": self.delays,
            "drops": self.drops,
        }
