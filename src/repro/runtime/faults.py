"""Deterministic fault injection for testing the resilience layer.

Every component here is seeded or schedule-driven, never wall-clock or
global-random dependent, so a failing test reproduces exactly:

* :class:`FailureSchedule` — decides, per call index, whether to fail
  (explicit indices, "first N", "every Kth", or a seeded random rate);
* :class:`FlakySink` — a sink that raises per schedule, recording every
  attempt and every successful delivery;
* :class:`FlakySource` — wraps a clean element sequence and injects
  poison payloads and displaced (late) events per seed.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.seraph.sinks import CollectingSink, Emission, Sink
from repro.stream.stream import StreamElement


class InjectedSinkFailure(RuntimeError):
    """The error a :class:`FlakySink` raises on a scheduled failure."""


class FailureSchedule:
    """Deterministic per-call failure decisions."""

    def __init__(self, fail_indices: Iterable[int] = ()):
        self._fail_indices = frozenset(fail_indices)

    @classmethod
    def never(cls) -> "FailureSchedule":
        return cls()

    @classmethod
    def first(cls, count: int) -> "FailureSchedule":
        """Fail the first ``count`` calls, then recover for good."""
        return cls(range(count))

    @classmethod
    def at(cls, *indices: int) -> "FailureSchedule":
        return cls(indices)

    @classmethod
    def every(cls, period: int, limit: int = 1000) -> "FailureSchedule":
        """Fail every ``period``-th call (0-based), up to ``limit`` calls."""
        return cls(range(0, limit, period))

    @classmethod
    def random(cls, rate: float, seed: int, limit: int = 1000
               ) -> "FailureSchedule":
        """Seeded Bernoulli failures over the first ``limit`` calls."""
        rng = random.Random(seed)
        return cls(i for i in range(limit) if rng.random() < rate)

    def should_fail(self, call_index: int) -> bool:
        return call_index in self._fail_indices

    def __repr__(self) -> str:
        shown = sorted(self._fail_indices)[:8]
        return f"FailureSchedule(fail at {shown}...)"


class FlakySink(Sink):
    """A sink that fails per schedule, then behaves.

    ``calls`` counts every ``receive`` invocation (delivery attempts);
    ``delivered`` holds the emissions that got through.  With
    ``FailureSchedule.first(n)`` this is exactly the acceptance
    scenario "fails deterministically N times then recovers".
    """

    def __init__(
        self,
        schedule: FailureSchedule,
        inner: Optional[Sink] = None,
    ):
        self.schedule = schedule
        self.inner = inner if inner is not None else CollectingSink()
        self.calls = 0
        self.failures = 0

    @property
    def delivered(self) -> List[Emission]:
        if isinstance(self.inner, CollectingSink):
            return list(self.inner.emissions)
        raise AttributeError("inner sink does not collect emissions")

    def receive(self, emission: Emission) -> None:
        index = self.calls
        self.calls += 1
        if self.schedule.should_fail(index):
            self.failures += 1
            raise InjectedSinkFailure(
                f"injected sink failure on call {index}"
            )
        self.inner.receive(emission)


class FlakySource:
    """Injects poison payloads and displaced events into a clean stream.

    Yields a mix of valid :class:`StreamElement` objects and raw payloads
    (to be fed through ``ResilientEngine.ingest_item``):

    * with probability ``poison_rate`` a poison payload from
      ``POISON_PAYLOADS`` is inserted *before* the next clean element;
    * with probability ``displace_rate`` a clean element is held back and
      re-emitted ``displace_by`` positions later — an out-of-order
      arrival the reorder buffer must re-sequence (or quarantine, when
      beyond the allowed lateness).

    The same ``seed`` always produces the same faulty sequence.
    """

    #: Representative malformed queue payloads (bad instant, missing
    #: graph, malformed graph document, wrong type entirely).
    POISON_PAYLOADS: Sequence[Any] = (
        {"instant": "not-a-number", "graph": {"nodes": [], "relationships": []}},
        {"graph": {"nodes": [], "relationships": []}},
        {"instant": 0, "graph": {"nodes": [{"labels": []}], "relationships": []}},
        "this is not json",
        {"instant": 1, "graph": "nope"},
        42,
    )

    def __init__(
        self,
        elements: Iterable[StreamElement],
        seed: int = 0,
        poison_rate: float = 0.0,
        displace_rate: float = 0.0,
        displace_by: int = 2,
    ):
        self._elements = list(elements)
        self.seed = seed
        self.poison_rate = poison_rate
        self.displace_rate = displace_rate
        self.displace_by = max(1, displace_by)

    def __iter__(self) -> Iterator[Any]:
        rng = random.Random(self.seed)
        held: List[tuple] = []  # (release_position, element)
        position = 0
        for element in self._elements:
            for release_at, late in [h for h in held]:
                if release_at <= position:
                    held.remove((release_at, late))
                    yield late
            if self.poison_rate and rng.random() < self.poison_rate:
                yield self.POISON_PAYLOADS[
                    rng.randrange(len(self.POISON_PAYLOADS))
                ]
            if self.displace_rate and rng.random() < self.displace_rate:
                held.append((position + self.displace_by, element))
            else:
                yield element
            position += 1
        for _release_at, late in sorted(held):
            yield late

    @property
    def clean_elements(self) -> List[StreamElement]:
        """The undisturbed underlying stream."""
        return list(self._elements)
