"""Fault-tolerant streaming runtime around the Seraph engine.

The paper defers the engine implementation (Section 6) and says nothing
about failure; the seed engine is fail-stop.  This package adds the
production concerns a deployed Kafka → ingestion → continuous-engine
pipeline (Section 2/5.2) needs, without changing the engine's
denotational-semantics contract:

* :class:`FaultPolicy` — FAIL_FAST / SKIP / DEAD_LETTER handling;
* :class:`DeadLetterQueue` — replayable quarantine of refused inputs;
* :class:`ReorderBuffer` — bounded out-of-order tolerance (watermark +
  allowed lateness);
* :class:`ResilientSink` — retries, exponential backoff with seeded
  jitter, circuit breaker, fallback sink;
* :class:`ResilientEngine` — the composed wrapper, with JSON
  checkpoint/restore of the full runtime state;
* :class:`GuardedIngestionPipeline` — fault policies for the MERGE
  ingestion pipeline;
* :class:`PoolSupervisor` — crash detection, pool rebuilds, idempotent
  retry, and graceful degradation around the parallel engines' process
  pools;
* :mod:`repro.runtime.faults` — the deterministic chaos harness
  (:class:`ChaosConfig` drives every fault axis from one seed).
"""

from repro.runtime.checkpoint import (
    engine_from_dict,
    engine_from_json,
    engine_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.deadletter import DeadLetterEntry, DeadLetterQueue
from repro.runtime.engine import ResilientEngine, decode_item
from repro.runtime.faults import (
    ChaosConfig,
    ChaosInjector,
    ChaosPoisonError,
    FailureSchedule,
    FlakySink,
    FlakySource,
    InjectedSinkFailure,
)
from repro.runtime.guard import GuardedIngestionPipeline, message_from_payload
from repro.runtime.parallel import (
    ParallelEngine,
    ShardedEngine,
    dead_letter_partition_handler,
    merge_emissions,
    run_partitioned,
)
from repro.runtime.policies import FaultPolicy
from repro.runtime.reorder import ReorderBuffer
from repro.runtime.supervisor import (
    PoolSupervisor,
    SupervisionMetrics,
    SupervisorConfig,
)
from repro.runtime.resilient_sink import (
    CircuitBreaker,
    ResilientSink,
    RetryPolicy,
)

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "ChaosPoisonError",
    "CircuitBreaker",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "FailureSchedule",
    "FaultPolicy",
    "FlakySink",
    "FlakySource",
    "GuardedIngestionPipeline",
    "InjectedSinkFailure",
    "ParallelEngine",
    "PoolSupervisor",
    "ReorderBuffer",
    "ResilientEngine",
    "ResilientSink",
    "RetryPolicy",
    "ShardedEngine",
    "SupervisionMetrics",
    "SupervisorConfig",
    "dead_letter_partition_handler",
    "decode_item",
    "merge_emissions",
    "run_partitioned",
    "engine_from_dict",
    "engine_from_json",
    "engine_to_dict",
    "load_checkpoint",
    "message_from_payload",
    "save_checkpoint",
]
