"""The fault-tolerant runtime wrapper around :class:`SeraphEngine`.

:class:`ResilientEngine` composes the resilience components in front of
and around an unmodified engine, preserving its denotational-semantics
contract on the surviving inputs:

* **ingestion guard** — raw payloads (JSON strings, ``{"instant", "graph"}``
  dicts, or :class:`StreamElement` objects) are validated before they
  touch the engine; malformed ones are handled per the poison policy
  (fail fast / skip / dead-letter);
* **reorder buffer** — one per input stream, re-sequencing bounded
  out-of-order arrivals and quarantining events beyond the allowed
  lateness;
* **sink isolation** — every registered sink is wrapped in a
  :class:`ResilientSink` (retries + circuit breaker + fallback), so user
  sink bugs cannot abort the evaluation loop;
* **checkpoint/restore** — the full runtime state (engine, buffers,
  dead letters, counters) serializes to JSON and resumes mid-stream
  with emissions bag-equal to an uninterrupted run.

All counters are surfaced through one shared
:class:`~repro.metrics.ResilienceMetrics`.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.errors import EngineError, PoisonMessageError, ReproError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.model import PropertyGraph
from repro.graph.temporal import TimeInstant
from repro.metrics import ResilienceMetrics
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    engine_from_dict,
    engine_to_dict,
)
from repro.runtime.deadletter import DeadLetterEntry, DeadLetterQueue
from repro.runtime.policies import FaultPolicy
from repro.runtime.reorder import ReorderBuffer
from repro.runtime.resilient_sink import (
    CircuitBreaker,
    ResilientSink,
    RetryPolicy,
)
from repro.seraph.ast import DEFAULT_STREAM, SeraphQuery
from repro.seraph.engine import RegisteredQuery, SeraphEngine
from repro.seraph.sinks import Emission, Sink
from repro.stream.stream import StreamElement

from repro.errors import CheckpointError


def decode_item(item: Any) -> StreamElement:
    """Decode/validate one raw input into a :class:`StreamElement`.

    Accepts a StreamElement (validated), an ``{"instant", "graph"}``
    payload dict, or its JSON string form.  Anything else — or any
    decoding failure — raises :class:`PoisonMessageError`.
    """
    if isinstance(item, StreamElement):
        if not isinstance(item.graph, PropertyGraph):
            raise PoisonMessageError(
                f"stream element graph is {type(item.graph).__name__}, "
                "not a PropertyGraph"
            )
        if isinstance(item.instant, bool) or not isinstance(item.instant, int):
            raise PoisonMessageError(
                f"stream element instant {item.instant!r} is not an integer"
            )
        return item
    if isinstance(item, (str, bytes)):
        try:
            item = json.loads(item)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PoisonMessageError(
                f"payload is not valid JSON: {exc}"
            ) from exc
    if not isinstance(item, dict):
        raise PoisonMessageError(
            f"payload of type {type(item).__name__} is not a stream element"
        )
    try:
        instant = item["instant"]
        graph_data = item["graph"]
    except KeyError as exc:
        raise PoisonMessageError(f"payload misses key {exc}") from exc
    if isinstance(instant, bool) or not isinstance(instant, int):
        raise PoisonMessageError(f"instant {instant!r} is not an integer")
    if not isinstance(graph_data, dict):
        raise PoisonMessageError("graph payload is not an object")
    try:
        graph = graph_from_dict(graph_data)
    except ReproError as exc:
        raise PoisonMessageError(f"malformed graph payload: {exc}") from exc
    return StreamElement(graph=graph, instant=instant)


class ResilientEngine:
    """A :class:`SeraphEngine` that survives poison, disorder, and flaky
    sinks.

    Parameters
    ----------
    engine:
        The wrapped engine (a fresh default one when omitted).  Build
        composed stacks through
        :func:`repro.build_engine`/``EngineConfig(resilient=True)``;
        the removed ``**engine_kwargs`` pass-through hard-errors.
    allowed_lateness:
        Out-of-order tolerance in stream time units: an element may
        arrive up to this much after a newer element and still be
        re-sequenced.  0 (default) admits only non-decreasing arrivals.
    poison_policy / late_policy / sink_policy:
        What to do with malformed payloads, events beyond the lateness
        bound, and emissions no delivery attempt could place.
    retry / breaker_factory / fallback_factory:
        Sink-delivery tuning; each registered query gets its own breaker
        (and fallback, when a factory is given).
    sleep / clock:
        Injectable time for deterministic tests (backoff sleeping and
        breaker recovery timing).
    chaos:
        A :class:`~repro.runtime.faults.ChaosConfig`.  Its source axis
        wraps every :meth:`run_stream` input in a seeded
        :class:`~repro.runtime.faults.FlakySource` (poison payloads,
        displaced arrivals); its sink axis slips a seeded
        :class:`~repro.runtime.faults.FlakySink` between the resilient
        delivery layer and each user sink, so retries/breakers get
        exercised deterministically.  The worker axis is consumed by the
        wrapped engine's pool supervisor, not here.

    The wrapper shares the wrapped engine's observability bundle
    (``self.obs is self.engine.obs``): sink retries show up as
    ``sink_attempt`` child spans under the engine's ``sink`` span, and
    reorder/poison counters land in the same registry.
    """

    def __init__(
        self,
        engine: Optional[SeraphEngine] = None,
        *,
        allowed_lateness: int = 0,
        poison_policy: FaultPolicy = FaultPolicy.DEAD_LETTER,
        late_policy: FaultPolicy = FaultPolicy.DEAD_LETTER,
        sink_policy: FaultPolicy = FaultPolicy.DEAD_LETTER,
        retry: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        fallback_factory: Optional[Callable[[], Sink]] = None,
        dead_letter_capacity: Optional[int] = None,
        metrics: Optional[ResilienceMetrics] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        chaos=None,
        **engine_kwargs,
    ):
        if engine_kwargs:
            # The PR 4 pass-through (forwarding **engine_kwargs to an
            # implicit SeraphEngine) went through a DeprecationWarning
            # cycle and is now removed; fail with the migration path.
            raise EngineError(
                "ResilientEngine(**engine_kwargs) was removed; build the "
                "stack through the front door instead: "
                "repro.build_engine(EngineConfig(resilient=True, ...)), "
                "or construct the inner engine and pass it explicitly"
            )
        self.engine = engine if engine is not None else SeraphEngine()
        self.obs = self.engine.obs
        self.allowed_lateness = allowed_lateness
        self.poison_policy = poison_policy
        self.late_policy = late_policy
        self.sink_policy = sink_policy
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else ResilienceMetrics()
        self.dead_letters = dead_letters if dead_letters is not None \
            else DeadLetterQueue(capacity=dead_letter_capacity,
                                 metrics=self.metrics)
        if self.dead_letters.metrics is None:
            self.dead_letters.metrics = self.metrics
        self.sleep = sleep
        self.clock = clock
        self.chaos = chaos
        self._breaker_factory = breaker_factory
        self._fallback_factory = fallback_factory
        self._buffers: Dict[str, ReorderBuffer] = {}
        self._last_ingested: Optional[TimeInstant] = None

    # -- registry ----------------------------------------------------------

    def register(
        self,
        query: Union[str, SeraphQuery],
        sink: Optional[Sink] = None,
        fallback: Optional[Sink] = None,
        wrap_sink: bool = True,
        **kwargs,
    ) -> RegisteredQuery:
        """Register a query; its sink is wrapped for fault isolation."""
        registered = self.engine.register(query, sink=sink, **kwargs)
        if wrap_sink and not isinstance(registered.sink, ResilientSink):
            registered.sink = self._wrap_sink(registered.sink, fallback)
        return registered

    def _wrap_sink(
        self, inner: Sink, fallback: Optional[Sink] = None
    ) -> ResilientSink:
        if fallback is None and self._fallback_factory is not None:
            fallback = self._fallback_factory()
        breaker = (
            self._breaker_factory()
            if self._breaker_factory is not None
            else CircuitBreaker(clock=self.clock, metrics=self.metrics)
        )
        if self.chaos is not None and self.chaos.wants_sink_chaos:
            # The flaky layer sits *under* the resilient one, so its
            # injected failures exercise retries/breakers while the user
            # sink still receives every delivered emission.
            inner = self.chaos.sink(inner)
        return ResilientSink(
            inner,
            retry=self.retry,
            breaker=breaker,
            fallback=fallback,
            failure_policy=self.sink_policy,
            dead_letters=self.dead_letters,
            metrics=self.metrics,
            sleep=self.sleep,
            tracer=self.obs.tracer if self.obs.enabled else None,
        )

    def deregister(self, name: str) -> None:
        self.engine.deregister(name)

    def registered(self, name: str) -> RegisteredQuery:
        return self.engine.registered(name)

    def sink(self, name: str) -> Sink:
        """The *inner* (user) sink of a registered query."""
        from repro.runtime.faults import FlakySink

        sink = self.engine.sink(name)
        if isinstance(sink, ResilientSink):
            sink = sink.inner
        if isinstance(sink, FlakySink):
            sink = sink.inner
        return sink

    @property
    def query_names(self) -> List[str]:
        return self.engine.query_names

    # -- ingestion ---------------------------------------------------------

    def _buffer(self, stream: str) -> ReorderBuffer:
        buffer = self._buffers.get(stream)
        if buffer is None:
            buffer = ReorderBuffer(
                allowed_lateness=self.allowed_lateness,
                late_policy=self.late_policy,
                dead_letters=self.dead_letters,
                metrics=self.metrics,
                stream=stream,
                registry=self.obs.registry if self.obs.enabled else None,
            )
            self._buffers[stream] = buffer
        return buffer

    def ingest(
        self,
        graph: PropertyGraph,
        instant: TimeInstant,
        stream: str = DEFAULT_STREAM,
    ) -> List[Emission]:
        """Guarded counterpart of :meth:`SeraphEngine.ingest`."""
        return self.ingest_item(
            StreamElement(graph=graph, instant=instant), stream
        )

    def ingest_item(
        self, item: Any, stream: str = DEFAULT_STREAM
    ) -> List[Emission]:
        """Validate, re-sequence, and ingest one raw input.

        Returns the emissions fired while catching the engine up to the
        newly released (ripe) elements.
        """
        try:
            element = decode_item(item)
        except PoisonMessageError as exc:
            self.metrics.poison_rejected += 1
            if self.obs.enabled:
                self.obs.registry.inc("resilience.poison_rejected")
            if self.poison_policy is FaultPolicy.FAIL_FAST:
                raise
            if self.poison_policy is FaultPolicy.SKIP:
                self.metrics.poison_skipped += 1
            else:
                self.dead_letters.append(
                    item, reason=str(exc), error=exc, stream=stream
                )
            return []
        released = self._buffer(stream).offer(element)
        return self._deliver(released, stream)

    def ingest_element(
        self, element: StreamElement, stream: str = DEFAULT_STREAM
    ) -> List[Emission]:
        return self.ingest_item(element, stream)

    def _deliver(
        self, released: List[StreamElement], stream: str
    ) -> List[Emission]:
        emissions: List[Emission] = []
        for element in released:
            # Evaluations strictly before this arrival must not see it
            # (the engine's own run_stream discipline).
            emissions.extend(self.engine.advance_to(element.instant - 1))
            self.engine.ingest_element(element, stream)
            self.metrics.ingested += 1
            self._last_ingested = element.instant
        return emissions

    # -- evaluation --------------------------------------------------------

    def advance_to(self, instant: TimeInstant) -> List[Emission]:
        return self.engine.advance_to(instant)

    def flush(
        self, until: Optional[TimeInstant] = None
    ) -> List[Emission]:
        """End-of-stream: drain every reorder buffer, then advance to
        ``until`` (default: the last ingested arrival)."""
        emissions: List[Emission] = []
        for stream, buffer in self._buffers.items():
            emissions.extend(self._deliver(buffer.flush(), stream))
        final = until if until is not None else self._last_ingested
        if final is not None:
            emissions.extend(self.engine.advance_to(final))
        return emissions

    def run_stream(
        self,
        items: Iterable[Any],
        until: Optional[TimeInstant] = None,
        stream: str = DEFAULT_STREAM,
    ) -> List[Emission]:
        """Fault-tolerant counterpart of :meth:`SeraphEngine.run_stream`:
        accepts raw payloads and StreamElements alike.

        With source chaos configured, ``items`` are fed through the
        seeded :class:`~repro.runtime.faults.FlakySource` first — poison
        payloads and displaced arrivals land on exactly the machinery
        (poison policy, reorder buffer) built to absorb them.
        """
        if self.chaos is not None and self.chaos.wants_source_chaos:
            items = self.chaos.source(items)
        emissions: List[Emission] = []
        for item in items:
            emissions.extend(self.ingest_item(item, stream))
        emissions.extend(self.flush(until))
        return emissions

    # -- checkpoint/restore ------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Serialize the full runtime state to a JSON-safe document."""
        self.metrics.checkpoints += 1
        return {
            "version": CHECKPOINT_VERSION,
            "engine": engine_to_dict(self.engine),
            "runtime": {
                "allowed_lateness": self.allowed_lateness,
                "poison_policy": self.poison_policy.value,
                "late_policy": self.late_policy.value,
                "sink_policy": self.sink_policy.value,
                "buffers": {
                    name: {
                        "watermark": buffer.watermark,
                        "frontier": buffer.frontier,
                        "pending": [
                            {"instant": element.instant,
                             "graph": graph_to_dict(element.graph)}
                            for element in buffer.pending
                        ],
                    }
                    for name, buffer in self._buffers.items()
                },
                "last_ingested": self._last_ingested,
                "metrics": self.metrics.as_dict(),
                "dead_letters": {
                    "total": self.dead_letters.total_appended,
                    "entries": [
                        entry.to_dict() for entry in self.dead_letters
                    ],
                },
            },
        }

    def checkpoint_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.checkpoint(), indent=indent, sort_keys=True)

    def save_checkpoint(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.checkpoint_json(indent=2))

    @classmethod
    def from_checkpoint(
        cls,
        data: Union[str, Dict[str, Any]],
        sinks: Optional[Dict[str, Sink]] = None,
        **kwargs,
    ) -> "ResilientEngine":
        """Rebuild a runtime (engine + buffers + quarantine + counters)
        from a :meth:`checkpoint` document or its JSON string.

        ``sinks`` maps query names to replacement user sinks (wrapped on
        restore); ``kwargs`` override runtime tuning (retry, clock, ...).
        """
        if isinstance(data, str):
            try:
                data = json.loads(data)
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"checkpoint is not valid JSON: {exc}"
                ) from exc
        try:
            runtime_data = data["runtime"]
            engine = engine_from_dict(data["engine"], sinks=sinks)
            metrics = ResilienceMetrics(**runtime_data["metrics"])
            metrics.restores += 1
            restored = cls(
                engine,
                allowed_lateness=runtime_data["allowed_lateness"],
                poison_policy=FaultPolicy.parse(
                    runtime_data["poison_policy"]
                ),
                late_policy=FaultPolicy.parse(runtime_data["late_policy"]),
                sink_policy=FaultPolicy.parse(runtime_data["sink_policy"]),
                metrics=metrics,
                **kwargs,
            )
            restored._last_ingested = runtime_data["last_ingested"]
            for name, buffer_data in runtime_data["buffers"].items():
                buffer = restored._buffer(name)
                buffer.restore_state(
                    watermark=buffer_data["watermark"],
                    frontier=buffer_data["frontier"],
                    pending=[
                        StreamElement(
                            graph=graph_from_dict(element["graph"]),
                            instant=int(element["instant"]),
                        )
                        for element in buffer_data["pending"]
                    ],
                )
            letters = runtime_data["dead_letters"]
            restored.dead_letters.restore(
                entries=[
                    DeadLetterEntry(
                        payload=entry["payload"],
                        reason=entry["reason"],
                        error=entry["error"],
                        stream=entry["stream"],
                        instant=entry["instant"],
                        sequence=entry["sequence"],
                    )
                    for entry in letters["entries"]
                ],
                total=letters["total"],
            )
            for name in restored.engine.query_names:
                registered = restored.engine.registered(name)
                if not isinstance(registered.sink, ResilientSink):
                    registered.sink = restored._wrap_sink(registered.sink)
            return restored
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed runtime checkpoint: {exc!r}"
            ) from exc

    @classmethod
    def load_checkpoint(
        cls,
        path: str,
        sinks: Optional[Dict[str, Sink]] = None,
        **kwargs,
    ) -> "ResilientEngine":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_checkpoint(handle.read(), sinks=sinks, **kwargs)

    # -- introspection -----------------------------------------------------

    def status(self) -> Dict[str, Any]:
        status = self.engine.status()
        status["resilience"] = {
            "allowed_lateness": self.allowed_lateness,
            "poison_policy": self.poison_policy.value,
            "late_policy": self.late_policy.value,
            "sink_policy": self.sink_policy.value,
            "buffered": {name: len(buffer)
                         for name, buffer in self._buffers.items()},
            "dead_letters": len(self.dead_letters),
            "metrics": self.metrics.as_dict(),
        }
        return status

    def unified_status(self) -> Dict[str, Any]:
        """The namespaced, schema-stamped status document
        (:func:`repro.obs.schema.unified_status`)."""
        from repro.obs.schema import unified_status

        return unified_status(self)

    def __repr__(self) -> str:
        return (f"ResilientEngine(lateness={self.allowed_lateness}, "
                f"queries={len(self.engine.query_names)}, "
                f"dead_letters={len(self.dead_letters)})")
