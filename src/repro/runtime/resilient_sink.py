"""Sink fault isolation: retries, backoff, circuit breaker, fallback.

The engine calls ``sink.receive(emission)`` synchronously inside its
evaluation loop, so in the seed a single raised exception in a user sink
kills the whole continuous run.  :class:`ResilientSink` wraps any sink:

* **bounded retries** with exponential backoff and *deterministic*
  (seeded) jitter, so tests and replays see identical schedules;
* a **circuit breaker** (closed → open → half-open) that stops hammering
  a sink that keeps failing and probes it again after a recovery
  timeout;
* an optional **fallback sink** receiving emissions the primary could
  not take, with a dead-letter queue as the quarantine of last resort.

The wall clock is injectable (``sleep``/``clock``) so the fault-injection
tests run in virtual time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import CircuitOpenError, SinkDeliveryError
from repro.metrics import ResilienceMetrics
from repro.runtime.deadletter import DeadLetterQueue
from repro.runtime.policies import FaultPolicy
from repro.seraph.sinks import Emission, Sink


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule with seeded jitter.

    ``max_attempts`` counts the first try too: ``max_attempts=4`` means
    one initial delivery plus up to three retries.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25  # +/- fraction of the nominal delay
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delays(self) -> List[float]:
        """The backoff delay before each retry (deterministic per policy)."""
        rng = random.Random(self.seed)
        delays = []
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            spread = delay * self.jitter
            delays.append(max(0.0, delay + rng.uniform(-spread, spread)))
            delay = min(delay * self.multiplier, self.max_delay)
        return delays


class CircuitBreaker:
    """Closed / open / half-open circuit breaker over failure counts.

    * CLOSED: deliveries flow; ``failure_threshold`` consecutive failures
      trip the breaker OPEN.
    * OPEN: deliveries are refused without touching the sink until
      ``recovery_timeout`` seconds (by ``clock``) have passed.
    * HALF_OPEN: one probe delivery is allowed; success closes the
      breaker, failure re-opens it and restarts the timer.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[ResilienceMetrics] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.clock = clock
        self.metrics = metrics
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.times_opened = 0

    def allow(self) -> bool:
        """May a delivery be attempted right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.clock() - self.opened_at >= self.recovery_timeout:
                self.state = self.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the single probe in flight

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        if self.state != self.OPEN:
            self.times_opened += 1
            if self.metrics is not None:
                self.metrics.breaker_opens += 1
        self.state = self.OPEN
        self.opened_at = self.clock()

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.state}, "
                f"failures={self.consecutive_failures}/"
                f"{self.failure_threshold})")


class ResilientSink(Sink):
    """Wraps a sink so its failures never abort the evaluation loop.

    Delivery of one emission:

    1. if the breaker refuses, divert (fallback → dead-letter → policy);
    2. otherwise try the inner sink up to ``retry.max_attempts`` times,
       sleeping the backoff schedule between attempts;
    3. on success, reset the breaker; after the final failure, record it
       on the breaker and divert the emission.

    ``failure_policy`` governs an undeliverable emission with no
    fallback: FAIL_FAST re-raises :class:`SinkDeliveryError` /
    :class:`CircuitOpenError`, SKIP drops it, DEAD_LETTER quarantines it.

    With a ``tracer`` (:class:`repro.obs.trace.Tracer`), every delivery
    attempt opens a ``sink_attempt`` span — ambient-parented, so it
    nests under the engine's ``sink`` span when one is open.
    """

    def __init__(
        self,
        inner: Sink,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fallback: Optional[Sink] = None,
        failure_policy: FaultPolicy = FaultPolicy.DEAD_LETTER,
        dead_letters: Optional[DeadLetterQueue] = None,
        metrics: Optional[ResilienceMetrics] = None,
        sleep: Callable[[float], None] = time.sleep,
        tracer=None,
    ):
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        if self.breaker.metrics is None:
            self.breaker.metrics = metrics
        self.fallback = fallback
        self.failure_policy = failure_policy
        self.dead_letters = dead_letters
        self.sleep = sleep
        self.tracer = tracer

    def receive(self, emission: Emission) -> None:
        if not self.breaker.allow():
            if self.metrics is not None:
                self.metrics.short_circuited += 1
            self._divert(
                emission,
                reason="circuit breaker open",
                error=CircuitOpenError(
                    f"circuit breaker open for query "
                    f"{emission.query_name!r}"
                ),
            )
            return
        probing = self.breaker.state == CircuitBreaker.HALF_OPEN
        delays = self.retry.delays()
        attempts = 1 if probing else self.retry.max_attempts
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                if self.tracer is not None:
                    with self.tracer.span(
                        "sink_attempt", attempt=attempt + 1
                    ) as span:
                        try:
                            self.inner.receive(emission)
                        except Exception as exc:
                            span.annotate(
                                outcome="error", error=type(exc).__name__
                            )
                            raise
                        span.annotate(outcome="delivered")
                else:
                    self.inner.receive(emission)
            except Exception as exc:  # noqa: BLE001 — isolate *any* sink bug
                last_error = exc
                if self.metrics is not None:
                    self.metrics.sink_failures += 1
                if attempt + 1 < attempts:
                    if self.metrics is not None:
                        self.metrics.retried += 1
                    self.sleep(delays[attempt])
            else:
                self.breaker.record_success()
                if self.metrics is not None:
                    self.metrics.sink_deliveries += 1
                return
        self.breaker.record_failure()
        self._divert(
            emission,
            reason=(
                f"sink failed {attempts} delivery attempt(s): {last_error}"
            ),
            error=last_error,
        )

    def _divert(
        self,
        emission: Emission,
        reason: str,
        error: Optional[BaseException],
    ) -> None:
        if self.fallback is not None:
            try:
                self.fallback.receive(emission)
            except Exception:  # noqa: BLE001 — fallback failed too
                pass
            else:
                if self.metrics is not None:
                    self.metrics.fallback_deliveries += 1
                return
        if self.failure_policy is FaultPolicy.FAIL_FAST:
            if isinstance(error, SinkDeliveryError):
                raise error
            raise SinkDeliveryError(reason) from error
        if self.failure_policy is FaultPolicy.DEAD_LETTER:
            if self.dead_letters is not None:
                self.dead_letters.append(
                    emission,
                    reason=reason,
                    error=error,
                    instant=emission.instant,
                )
