"""Engine checkpoint/restore: serialize a mid-run engine to JSON.

A checkpoint captures everything a fresh :class:`SeraphEngine` needs to
continue a continuous run with emissions bag-equal to the uninterrupted
run (the property the tests assert):

* engine configuration (policy, incremental, window sharing/reuse, the
  static background graph);
* per-stream retained elements **with their eviction bookkeeping**
  (``base_seq``), so restored window states catch up over exactly the
  surviving history;
* per-query progress: the registered query *text* (re-parsed on
  restore), next evaluation instant, done flag, evaluation counters, and
  the report-policy state (the previous evaluation's table — required
  for ``ON ENTERING`` / ``ON EXITING`` correctness across the restore).

Not captured: sinks (arbitrary user objects — pass replacements to
:func:`engine_from_dict`), the accumulated per-query result history, the
reuse-memo table, and the delta-path assignment set (the first
post-restore evaluation simply recomputes / full-refreshes).

The document is pure JSON; graph payloads reuse :mod:`repro.graph.io`,
table values a tagged codec (nodes, relationships, paths, maps, lists).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import CheckpointError
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    node_from_dict,
    node_to_dict,
    relationship_from_dict,
    relationship_to_dict,
)
from repro.graph.model import Node, Path, Relationship
from repro.graph.table import Record, Table
from repro.seraph.dataflow import StreamMaterializer
from repro.seraph.engine import SeraphEngine
from repro.seraph.parser import parse_seraph
from repro.seraph.sinks import Sink
from repro.stream.stream import StreamElement
from repro.stream.window import ActiveSubstreamPolicy

CHECKPOINT_VERSION = 1


# -- value / table codec -----------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode one table cell into a JSON-safe tagged shape."""
    if isinstance(value, Node):
        return {"$": "node", "data": node_to_dict(value)}
    if isinstance(value, Relationship):
        return {"$": "rel", "data": relationship_to_dict(value)}
    if isinstance(value, Path):
        return {
            "$": "path",
            "nodes": [node_to_dict(node) for node in value.nodes],
            "relationships": [
                relationship_to_dict(rel) for rel in value.relationships
            ],
        }
    if isinstance(value, Mapping):
        return {"$": "map",
                "entries": {key: encode_value(item)
                            for key, item in value.items()}}
    if isinstance(value, (list, tuple)):
        return {"$": "list", "items": [encode_value(item) for item in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CheckpointError(
        f"cannot checkpoint value of type {type(value).__name__}"
    )


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("$")
        if tag == "node":
            return node_from_dict(value["data"])
        if tag == "rel":
            return relationship_from_dict(value["data"])
        if tag == "path":
            return Path(
                nodes=tuple(node_from_dict(n) for n in value["nodes"]),
                relationships=tuple(
                    relationship_from_dict(r)
                    for r in value["relationships"]
                ),
            )
        if tag == "map":
            return {key: decode_value(item)
                    for key, item in value["entries"].items()}
        if tag == "list":
            return [decode_value(item) for item in value["items"]]
        raise CheckpointError(f"unknown value tag {tag!r}")
    return value


def table_to_dict(table: Table) -> Dict[str, Any]:
    return {
        "fields": sorted(table.fields),
        "records": [
            {name: encode_value(record[name]) for name in record}
            for record in table
        ],
    }


def table_from_dict(data: Dict[str, Any]) -> Table:
    return Table(
        [
            Record({name: decode_value(value)
                    for name, value in record.items()})
            for record in data["records"]
        ],
        fields=data["fields"],
    )


# -- engine checkpoint -------------------------------------------------------

def engine_to_dict(engine: SeraphEngine) -> Dict[str, Any]:
    """Serialize a mid-run engine to a JSON-safe checkpoint document."""
    document: Dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "config": {
            "policy": engine.policy.name,
            "incremental": engine.incremental,
            "reuse_unchanged_windows": engine.reuse_unchanged_windows,
            "share_windows": engine.share_windows,
            "delta_eval": engine.delta_eval,
            "graph_backend": engine.graph_backend,
            "vectorized": engine.vectorized,
            "static_graph": (
                graph_to_dict(engine.static_graph)
                if engine.static_graph is not None else None
            ),
            # Set for ParallelEngine instances; None restores serial.
            "parallel_workers": getattr(engine, "workers", None),
        },
        "watermark": engine._watermark,
        "streams": {
            name: {
                "base_seq": state.base_seq,
                "elements": [
                    {"instant": element.instant,
                     "graph": graph_to_dict(element.graph)}
                    for element in state.elements
                ],
            }
            for name, state in engine._streams.items()
        },
        "queries": [
            {
                "text": registered.query.render(),
                "next_eval": registered.next_eval,
                "done": registered.done,
                "evaluations": registered.evaluations,
                "reused_evaluations": registered.reused_evaluations,
                "report_previous": (
                    table_to_dict(registered.report._previous)
                    if registered.report is not None
                    and registered.report._previous is not None
                    else None
                ),
            }
            for registered in engine._queries.values()
        ],
    }
    if engine._materializers:
        # Derived-stream cursors (docs/DATAFLOW.md): the materializer's
        # merge store and counters, so restored pipelines keep node
        # identity and the per-stream cursor across the restore.
        document["dataflow"] = {
            stream: materializer.to_dict()
            for stream, materializer in engine._materializers.items()
        }
    return document


def engine_from_dict(
    data: Dict[str, Any],
    sinks: Optional[Dict[str, Sink]] = None,
) -> SeraphEngine:
    """Rebuild an engine mid-run from :func:`engine_to_dict` output.

    ``sinks`` maps query names to replacement sinks (sinks are not part
    of the checkpoint); unmapped queries get a fresh default sink.
    """
    try:
        version = data["version"]
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        config = data["config"]
        static = config.get("static_graph")
        core_kwargs = dict(
            policy=ActiveSubstreamPolicy[config["policy"]],
            incremental=config["incremental"],
            static_graph=graph_from_dict(static) if static is not None
            else None,
            reuse_unchanged_windows=config["reuse_unchanged_windows"],
            share_windows=config["share_windows"],
            # Absent in version-1 documents written before the delta path.
            delta_eval=config.get("delta_eval", True),
            # Absent in documents written before the columnar backend.
            graph_backend=config.get("graph_backend", "reference"),
            # Absent in documents written before vectorized pruning; None
            # re-resolves from the environment/backend default.
            vectorized=config.get("vectorized"),
        )
        workers = config.get("parallel_workers")
        if workers is not None:
            # Restore the parallel subclass directly (the legacy
            # SeraphEngine(parallel=N) factory hook is gone).
            from repro.runtime.parallel import ParallelEngine

            engine: SeraphEngine = ParallelEngine(
                workers=workers, **core_kwargs
            )
        else:
            engine = SeraphEngine(**core_kwargs)
        for name, stream_data in data["streams"].items():
            state = engine._stream_state(name)
            for element_data in stream_data["elements"]:
                state.append(
                    StreamElement(
                        graph=graph_from_dict(element_data["graph"]),
                        instant=int(element_data["instant"]),
                    )
                )
            state.base_seq = int(stream_data["base_seq"])
        for query_data in data["queries"]:
            query = parse_seraph(query_data["text"])
            sink = sinks.get(query.name) if sinks else None
            registered = engine.register(query, sink=sink, validate=False)
            registered.next_eval = query_data["next_eval"]
            registered.done = query_data["done"]
            registered.evaluations = query_data["evaluations"]
            registered.reused_evaluations = query_data["reused_evaluations"]
            previous = query_data.get("report_previous")
            if previous is not None and registered.report is not None:
                registered.report._previous = table_from_dict(previous)
        # Re-registering producers created fresh materializers; overwrite
        # them with the checkpointed state (absent in documents written
        # before dataflow chaining).
        for stream, materializer_data in data.get("dataflow", {}).items():
            engine._materializers[stream] = \
                StreamMaterializer.from_dict(materializer_data)
        engine._watermark = data["watermark"]
        return engine
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed checkpoint document: {exc!r}"
        ) from exc


def checkpoint_to_json(engine: SeraphEngine, indent: Optional[int] = None
                       ) -> str:
    return json.dumps(engine_to_dict(engine), indent=indent, sort_keys=True)


def engine_from_json(
    text: str, sinks: Optional[Dict[str, Sink]] = None
) -> SeraphEngine:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
    return engine_from_dict(data, sinks=sinks)


def save_checkpoint(engine: SeraphEngine, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(checkpoint_to_json(engine, indent=2))


def load_checkpoint(
    path: str, sinks: Optional[Dict[str, Sink]] = None
) -> SeraphEngine:
    with open(path, "r", encoding="utf-8") as handle:
        return engine_from_json(handle.read(), sinks=sinks)
