"""Supervised process-pool execution: detect, rebuild, retry, degrade.

The parallel engines (PR 3) ran on a bare ``ProcessPoolExecutor``: one
worker death surfaced as ``BrokenProcessPool`` and killed every query in
the run.  :class:`PoolSupervisor` puts a supervision layer between the
engines and the pool, built on one observation: every offloaded task in
this codebase (:func:`repro.runtime.parallel._worker_evaluate_group`,
:func:`repro.runtime.parallel._worker_run_shard`) is a **pure function
of its pickled payload**, so re-executing it after a crash is safe and
produces byte-identical results.

The supervision ladder, in escalation order:

1. **retry in place** — a failed task (chaos poison, pickling trouble,
   any task-level exception) is resubmitted up to
   ``SupervisorConfig.task_retries`` times;
2. **rebuild the pool** — worker death (``BrokenProcessPool``), a
   broken executor, or a per-task timeout abandons the pool and builds
   a fresh one behind bounded exponential backoff, then retries every
   unfinished task of the batch;
3. **degrade to in-parent serial execution** — once rebuilds exceed the
   crash budget (``max_restarts``), tasks run inline in the parent, so
   emissions continue (byte-identical — same pure functions) instead of
   the run dying; after ``probation_tasks`` consecutive inline
   successes the supervisor returns to pooled mode with a fresh budget;
4. **raise** — only when degradation is disabled
   (``SupervisorConfig(degrade=False)``), as a typed
   :class:`~repro.errors.ParallelExecutionError` carrying the window
   group signature and worker count, never a raw
   ``concurrent.futures`` internal.

Chaos (:class:`~repro.runtime.faults.ChaosConfig`) plugs in here: the
supervisor consults a seeded :class:`~repro.runtime.faults.ChaosInjector`
per submission attempt and ships worker-side directives (kill / delay /
poison) inside the task wrapper, while result drops are simulated
parent-side.  Everything is observable: pool rebuilds, retries and
degraded-mode transitions surface as ``supervision.*`` counters and
``pool_rebuild`` / ``degraded_mode`` trace spans through the shared
:class:`~repro.obs.Observability` bundle, and as
``status()["supervision"]`` on both engines (docs/SUPERVISION.md).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError, ParallelExecutionError
from repro.obs import NOOP_OBS, Observability
from repro.runtime.faults import (
    DELAY_RESULT,
    DROP_RESULT,
    KILL_WORKER,
    POISON_TASK,
    ChaosConfig,
    ChaosInjector,
    ChaosPoisonError,
)

#: Default crash budget: pool rebuilds tolerated before degrading.
DEFAULT_CRASH_BUDGET = 3


def _supervised_task(fn, directive: Optional[Tuple], payload):
    """The worker-side wrapper around every supervised task.

    ``directive`` is the chaos verdict for this submission attempt
    (``None`` outside chaos runs): ``kill`` murders the worker process
    mid-task (the pool breaks, exactly like a real crash), ``delay``
    sleeps before evaluating, ``poison`` raises instead of evaluating.
    ``drop`` never reaches the worker — it is simulated parent-side.
    """
    if directive is not None:
        kind = directive[0]
        if kind == KILL_WORKER:
            os._exit(17)
        elif kind == DELAY_RESULT:
            time.sleep(directive[1])
        elif kind == POISON_TASK:
            raise ChaosPoisonError(
                f"injected poison task (burst #{directive[1]})"
            )
    return fn(payload)


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning of one :class:`PoolSupervisor`.

    ``max_restarts`` is the crash budget: how many pool rebuilds are
    tolerated before the supervisor degrades to in-parent execution
    (with ``degrade=False`` it raises instead).  ``task_retries`` caps
    resubmissions of one failing task before it falls back inline.
    ``task_timeout`` bounds each task's wall-clock seconds — a hung
    worker counts as a crash.  Backoff between rebuilds is bounded
    exponential (``backoff_base * 2^k``, capped at ``backoff_max``).
    ``probation_tasks`` consecutive inline successes end degraded mode.
    """

    max_restarts: int = DEFAULT_CRASH_BUDGET
    task_retries: int = 4
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    probation_tasks: int = 16
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise EngineError("max_restarts must be >= 0")
        if self.task_retries < 0:
            raise EngineError("task_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise EngineError("task_timeout must be positive")
        if self.probation_tasks < 1:
            raise EngineError("probation_tasks must be >= 1")

    def backoff(self, restart: int) -> float:
        """Backoff before the ``restart``-th rebuild (1-based)."""
        return min(
            self.backoff_base * (2 ** max(0, restart - 1)),
            self.backoff_max,
        )


@dataclass
class SupervisionMetrics:
    """Counters surfaced by one :class:`PoolSupervisor`."""

    pooled_tasks: int = 0          # tasks completed in a worker process
    inline_tasks: int = 0          # tasks executed in-parent (degraded/fallback)
    worker_crashes: int = 0        # BrokenProcessPool / timeout events
    pool_rebuilds: int = 0         # fresh pools built after a crash
    task_retries: int = 0          # task resubmissions (failures + drops)
    task_timeouts: int = 0         # tasks that exceeded task_timeout
    dropped_results: int = 0       # chaos-dropped results (parent-side)
    degraded_transitions: int = 0  # pooled -> degraded switches
    degraded_recoveries: int = 0   # degraded -> pooled (probation passed)

    def as_dict(self) -> Dict[str, int]:
        return {
            name: getattr(self, name)
            for name in (
                "pooled_tasks", "inline_tasks", "worker_crashes",
                "pool_rebuilds", "task_retries", "task_timeouts",
                "dropped_results", "degraded_transitions",
                "degraded_recoveries",
            )
        }


class PoolSupervisor:
    """Crash-tolerant batch execution over a rebuildable process pool.

    ``pool`` injects an externally managed executor (never shut down by
    the supervisor; abandoned — not closed — if it breaks).
    ``pool_factory`` overrides how replacement pools are built (tests
    inject crashy executors through it).  ``sleep`` injects the backoff
    clock.  ``chaos`` accepts a :class:`ChaosConfig` or a ready
    :class:`ChaosInjector`.
    """

    def __init__(
        self,
        workers: int,
        *,
        config: Optional[SupervisorConfig] = None,
        pool: Optional[ProcessPoolExecutor] = None,
        pool_factory: Optional[Callable[[], ProcessPoolExecutor]] = None,
        obs: Optional[Observability] = None,
        chaos: Optional[object] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.workers = int(workers)
        self.config = config if config is not None else SupervisorConfig()
        self.obs = obs if obs is not None else NOOP_OBS
        if isinstance(chaos, ChaosConfig):
            chaos = chaos.injector() if chaos.wants_worker_chaos else None
        self.chaos: Optional[ChaosInjector] = chaos
        self.sleep = sleep
        self.metrics = SupervisionMetrics()
        self._pool = pool
        self._owns_pool = pool is None
        self._pool_factory = pool_factory or (
            lambda: ProcessPoolExecutor(max_workers=self.workers)
        )
        #: Executors given up on but possibly still draining a task
        #: (timeouts); close() joins them so no worker outlives the run.
        self._abandoned: List[ProcessPoolExecutor] = []
        self.degraded = False
        self._restarts = 0    # crash budget spent since last recovery
        self._probation = 0   # consecutive inline successes while degraded

    # -- pool lifecycle ----------------------------------------------------

    @property
    def pool(self) -> Optional[ProcessPoolExecutor]:
        """The live executor (``None`` until first pooled batch)."""
        return self._pool

    @property
    def restarts(self) -> int:
        """Crash budget spent since the last probation recovery."""
        return self._restarts

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._pool_factory()
            self._owns_pool = True
        return self._pool

    def _abandon_pool(self) -> None:
        # No shutdown here: ``shutdown(wait=False)`` drops the executor's
        # manager-thread reference, making a later blocking shutdown a
        # no-op — a timed-out worker would then outlive close().  The
        # one blocking, joining shutdown happens in :meth:`close`.
        pool, self._pool = self._pool, None
        if pool is not None and self._owns_pool:
            self._abandoned.append(pool)
        # Whatever replaces an injected pool is supervisor-owned.
        self._owns_pool = True

    def close(self) -> None:
        """Shut down the live pool (if owned) and join abandoned ones."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=True)
        self._pool = None
        self._owns_pool = True
        for pool in self._abandoned:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
        self._abandoned.clear()

    # -- batch execution ---------------------------------------------------

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        signatures: Optional[Sequence[object]] = None,
    ) -> List[Any]:
        """Execute ``fn`` over ``payloads``; results in payload order.

        ``fn`` must be a pure, picklable, module-level function of its
        payload — re-execution on the same payload must be equivalent;
        that is what makes crash retries and degraded re-runs safe.
        ``signatures`` (aligned with ``payloads``) label failures in
        :class:`~repro.errors.ParallelExecutionError`.
        """
        results: List[Any] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        attempts = [0] * len(payloads)
        while pending:
            if self.degraded:
                self._run_degraded(fn, payloads, pending, results)
                return results
            pending = self._run_pooled(
                fn, payloads, pending, attempts, results, signatures
            )
        return results

    def _signature(self, signatures, index):
        if signatures is None:
            return None
        return signatures[index]

    def _run_pooled(
        self, fn, payloads, pending, attempts, results, signatures
    ) -> List[int]:
        """One round against the live pool; returns indices to retry."""
        pool = self._ensure_pool()
        futures: List[Tuple[int, Future, bool]] = []
        crash: Optional[BaseException] = None
        crash_index = pending[0]
        for index in pending:
            directive = (
                self.chaos.directive() if self.chaos is not None else None
            )
            dropped = directive is not None and directive[0] == DROP_RESULT
            try:
                future = pool.submit(
                    _supervised_task,
                    fn,
                    None if dropped else directive,
                    payloads[index],
                )
            except (BrokenExecutor, RuntimeError) as exc:
                # Pool already broken/shut down at submit time.
                crash, crash_index = exc, index
                break
            futures.append((index, future, dropped))
        submitted = {index for index, _f, _d in futures}
        still = [index for index in pending if index not in submitted]
        for index, future, dropped in futures:
            if crash is not None:
                # The pool is gone; everything unread retries after the
                # rebuild (completed-but-unread results recompute — the
                # tasks are pure, so this is waste, never wrongness).
                still.append(index)
                continue
            try:
                value = future.result(timeout=self.config.task_timeout)
            except BrokenExecutor as exc:
                crash, crash_index = exc, index
                still.append(index)
            except FutureTimeoutError as exc:
                self.metrics.task_timeouts += 1
                if self.obs.enabled:
                    self.obs.registry.inc("supervision.task_timeouts")
                crash, crash_index = exc, index
                still.append(index)
            except Exception as exc:
                # Task-level failure (chaos poison, pickling, a bug).
                attempts[index] += 1
                self._count_retry()
                if attempts[index] > self.config.task_retries:
                    results[index] = self._last_resort(
                        fn, payloads[index], exc,
                        self._signature(signatures, index),
                    )
                else:
                    still.append(index)
            else:
                if dropped:
                    self.metrics.dropped_results += 1
                    self._count_retry()
                    # A drop consumes an attempt too, so pathological
                    # drop rates still terminate via the last resort.
                    attempts[index] += 1
                    if attempts[index] > self.config.task_retries:
                        results[index] = self._last_resort(
                            fn, payloads[index],
                            RuntimeError("chaos dropped every result"),
                            self._signature(signatures, index),
                        )
                    else:
                        still.append(index)
                else:
                    results[index] = value
                    self.metrics.pooled_tasks += 1
        if crash is not None:
            self._handle_crash(crash, self._signature(signatures, crash_index))
        still.sort()
        return still

    def _count_retry(self) -> None:
        self.metrics.task_retries += 1
        if self.obs.enabled:
            self.obs.registry.inc("supervision.task_retries")

    def _last_resort(self, fn, payload, cause, signature):
        """A task that failed every pooled attempt: run it in-parent
        (graceful), or raise typed when degradation is disabled."""
        if not self.config.degrade:
            raise ParallelExecutionError(
                f"task failed after {self.config.task_retries + 1} pooled "
                f"attempts: {cause}",
                signature=signature,
                workers=self.workers,
            ) from cause
        self.metrics.inline_tasks += 1
        if self.obs.enabled:
            self.obs.registry.inc("supervision.inline_tasks")
        return fn(payload)

    # -- crash handling / degradation ladder -------------------------------

    def _handle_crash(self, cause, signature) -> None:
        self.metrics.worker_crashes += 1
        if self.obs.enabled:
            self.obs.registry.inc("supervision.worker_crashes")
        if self._restarts >= self.config.max_restarts:
            self._abandon_pool()
            if not self.config.degrade:
                raise ParallelExecutionError(
                    f"worker pool exceeded its crash budget "
                    f"({self.config.max_restarts} restarts): {cause}",
                    signature=signature,
                    workers=self.workers,
                ) from cause
            self._enter_degraded(cause)
            return
        self._restarts += 1
        self.metrics.pool_rebuilds += 1
        started = time.perf_counter()
        self._abandon_pool()
        delay = self.config.backoff(self._restarts)
        if delay > 0:
            self.sleep(delay)
        self._ensure_pool()
        if self.obs.enabled:
            self.obs.registry.inc("supervision.pool_rebuilds")
            self.obs.tracer.add_completed(
                "pool_rebuild",
                time.perf_counter() - started,
                reason=type(cause).__name__,
                restart=self._restarts,
            )

    def _enter_degraded(self, cause) -> None:
        if self.degraded:
            return
        self.degraded = True
        self._probation = 0
        self.metrics.degraded_transitions += 1
        if self.obs.enabled:
            self.obs.registry.inc("supervision.degraded_transitions")
            self.obs.registry.set("supervision.degraded", 1)
            self.obs.tracer.add_completed(
                "degraded_mode", 0.0, reason=type(cause).__name__,
                budget=self.config.max_restarts,
            )

    def _run_degraded(self, fn, payloads, pending, results) -> None:
        """In-parent serial execution: emissions continue, byte-identical
        (same pure task functions).  Errors propagate raw — a failure
        that reproduces in-parent is a genuine bug, exactly what the
        serial engine would raise."""
        for index in pending:
            results[index] = fn(payloads[index])
            self.metrics.inline_tasks += 1
            if self.obs.enabled:
                self.obs.registry.inc("supervision.inline_tasks")
            self._probation += 1
            if self._probation >= self.config.probation_tasks:
                self._leave_degraded()

    def _leave_degraded(self) -> None:
        """Probation passed: back to pooled mode with a fresh budget."""
        self.degraded = False
        self._restarts = 0
        self._probation = 0
        self.metrics.degraded_recoveries += 1
        if self.obs.enabled:
            self.obs.registry.inc("supervision.degraded_recoveries")
            self.obs.registry.set("supervision.degraded", 0)

    # -- introspection -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The ``status()["supervision"]`` document."""
        info: Dict[str, object] = {
            "mode": "degraded" if self.degraded else "pooled",
            "workers": self.workers,
            "crash_budget": self.config.max_restarts,
            "restarts_used": self._restarts,
            "probation": (
                {
                    "successes": self._probation,
                    "required": self.config.probation_tasks,
                }
                if self.degraded else None
            ),
            **self.metrics.as_dict(),
        }
        if self.chaos is not None:
            info["chaos"] = self.chaos.as_dict()
        return info

    def render(self) -> str:
        from repro.obs import format as obs_format

        shown = {
            key: value
            for key, value in self.as_dict().items()
            if value not in (None, 0) or key in ("mode", "workers")
        }
        return obs_format.render_counters(
            "supervision", shown, empty="no supervised tasks"
        )
