"""Parallel sharded execution: process-pool workers behind the engine.

Seraph's Section 6 defers "optimizations regarding concurrent queries";
future-work item (ii) sketches logical sub-streams.  This module turns
both hooks into wall-clock speedup without changing a single emitted
byte, along two independent axes:

* **query-level parallelism** — :class:`ParallelEngine` (a
  :class:`~repro.seraph.engine.SeraphEngine` subclass).  At each
  evaluation pass it advances windows serially, then groups the due
  *full* evaluations by their shared-window signature, ships each
  group's pickled snapshot graphs to a worker process once, and computes
  the group's tables there.  Window maintenance, the reuse memo, the
  delta path, report policies, and sink delivery all stay in the parent,
  applied in the exact serial firing order — emissions are byte-identical
  to the serial engine (docs/PARALLEL.md gives the determinism argument).

* **partition-level parallelism** — :class:`ShardedEngine` /
  :func:`run_partitioned`.  A stream is routed through
  :func:`repro.stream.partition.partition_elements` into logical
  sub-streams, sub-streams are assigned to N shards (first-seen order,
  round-robin), each shard runs a full engine replica over its share —
  in worker processes when ``workers > 1`` — and per-shard emissions are
  recombined by :func:`merge_emissions` (same (instant, query) tables
  bag-united in shard order).  Shard runs carry their replica state
  through :mod:`repro.runtime.checkpoint` documents, so the whole thing
  checkpoints/restores like any other engine.

A cost-model scheduler (:func:`repro.cypher.planner.pattern_cost`)
decides serial vs. parallel per evaluation: small snapshots never pay
the IPC tax.  :class:`repro.metrics.ParallelMetrics` counts what
happened.

Both engines run their pools through a
:class:`~repro.runtime.supervisor.PoolSupervisor`: worker death and
``BrokenProcessPool`` rebuild the pool behind bounded backoff, failing
tasks retry idempotently (both worker functions are pure over their
pickled payloads), and past the crash budget execution degrades to
in-parent serial per window group — emissions continue byte-identical
instead of the run dying (docs/SUPERVISION.md).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cypher.planner import pattern_cost
from repro.errors import CheckpointError, EngineError, PartitionError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.table import Table
from repro.graph.temporal import TimeInstant
from repro.metrics import ParallelMetrics
from repro.runtime.deadletter import DeadLetterQueue
from repro.runtime.supervisor import PoolSupervisor, SupervisorConfig
from repro.seraph import semantics
from repro.seraph.engine import SeraphEngine, _PendingEvaluation
from repro.seraph.ast import SeraphMatch
from repro.seraph.parser import parse_seraph
from repro.seraph.sinks import Emission
from repro.stream.partition import partition_elements
from repro.stream.stream import StreamElement
from repro.stream.timeline import TimeInterval
from repro.stream.tvt import WIN_END, WIN_START, TimeAnnotatedTable
from repro.stream.window import ActiveSubstreamPolicy

#: Estimated matching cost (see :func:`pattern_cost`) above which one
#: evaluation is worth a round-trip to a worker process.  Calibrated so
#: the unit-test graphs (tens of nodes, fixed-length patterns) stay
#: serial while variable-length/shortestPath workloads offload.
DEFAULT_OFFLOAD_THRESHOLD = 5_000.0

# -- worker-side tasks --------------------------------------------------------
#
# Worker payloads carry query *text* (not ASTs): each worker keeps a
# parse cache and a compiled-expression cache keyed by text, so repeated
# evaluations of the same query reuse the same AST and compiled closures
# across tasks (AST node identity is the expression-cache key).
#
# Compiled physical plans ride along the same way: the parent ships its
# cached plan (pickled) with each task, tagged by its statistics band.
# Workers keep the *first* unpickled copy per (text, band) and execute
# that one on later tasks, so the plan's embedded AST nodes keep a
# stable identity and the expression cache stays effective.

_PARSE_CACHE: Dict[str, object] = {}
_EXPR_CACHES: Dict[str, dict] = {}
_PLAN_CACHE: Dict[str, Tuple[tuple, object]] = {}


def _parse_cached(text: str):
    query = _PARSE_CACHE.get(text)
    if query is None:
        query = parse_seraph(text)
        _PARSE_CACHE[text] = query
    return query


def _plan_cached(text: str, token: tuple, plan):
    cached = _PLAN_CACHE.get(text)
    if cached is not None and cached[0] == token:
        return cached[1]
    _PLAN_CACHE[text] = (token, plan)
    return plan


def _worker_evaluate_group(
    payload,
) -> Tuple[int, float, List[Table], List[Tuple[float, float]],
           List[Dict[int, int]], List[Dict[int, List[int]]]]:
    """Evaluate one shared-window group of full evaluations.

    ``payload`` is ``(graphs, tasks, vectorized)`` where ``graphs`` maps
    ``(stream, width)`` to the group's snapshot graphs (pickled once per
    group) and each task is ``(query_text, interval_start, interval_end,
    plan_entry)`` — ``plan_entry`` is ``(band, PhysicalPlan)`` when the
    parent compiled one, else None (interpreted fallback).
    ``vectorized`` mirrors the parent engine's flag: graph ``__reduce__``
    drops the parent's candidate-pruner memo, so each worker rebuilds its
    own pruner per unpickled snapshot (docs/VECTORIZED.md).  Pure: reads
    the snapshots, returns the output tables plus one ``(start_offset,
    duration)`` timing fragment, one per-operator row-count dict, and one
    per-operator ``[candidates, pruned]`` dict per task — the parent
    stitches timings into its trace as ``worker_evaluate`` spans and
    merges the counters into the query's EXPLAIN ANALYZE totals, so one
    trace covers both sides of the process boundary.
    """
    from repro.cypher.physical import execute_plan

    graphs, tasks, vectorized = payload
    started = time.perf_counter()
    tables: List[Table] = []
    timings: List[Tuple[float, float]] = []
    rows_per_task: List[Dict[int, int]] = []
    prunes_per_task: List[Dict[int, List[int]]] = []
    for text, lo, hi, plan_entry in tasks:
        task_started = time.perf_counter()
        rows: Dict[int, int] = {}
        prunes: Dict[int, List[int]] = {}
        if plan_entry is not None:
            plan = _plan_cached(text, plan_entry[0], plan_entry[1])
            tables.append(
                execute_plan(
                    plan,
                    lambda stream, width: graphs[(stream, width)],
                    TimeInterval(lo, hi),
                    expr_cache=_EXPR_CACHES.setdefault(text, {}),
                    rows=rows,
                    vectorized=vectorized,
                    prunes=prunes if vectorized else None,
                )
            )
        else:
            query = _parse_cached(text)
            tables.append(
                semantics.execute_body(
                    query,
                    lambda stream, width: graphs[(stream, width)],
                    TimeInterval(lo, hi),
                    expr_cache=_EXPR_CACHES.setdefault(text, {}),
                    vectorized=vectorized,
                )
            )
        rows_per_task.append(rows)
        prunes_per_task.append(prunes)
        timings.append(
            (task_started - started, time.perf_counter() - task_started)
        )
    return (os.getpid(), time.perf_counter() - started, tables, timings,
            rows_per_task, prunes_per_task)


def _worker_run_shard(payload):
    """Run one shard replica over its sub-stream slice.

    ``payload`` is ``(state, query_texts, options, elements, until)``;
    ``state`` is a prior checkpoint document (or None for a fresh
    replica).  Returns the emissions plus the replica's new checkpoint
    document so the parent stays the single source of shard state.
    """
    from repro.runtime.checkpoint import engine_from_dict, engine_to_dict

    state, query_texts, options, elements, until = payload
    started = time.perf_counter()
    if state is not None:
        engine = engine_from_dict(state)
    else:
        engine = SeraphEngine(**options)
        for text in query_texts:
            engine.register(text, validate=False)
    emissions = engine.run_stream(elements, until=until)
    return (
        os.getpid(),
        time.perf_counter() - started,
        emissions,
        engine_to_dict(engine),
    )


# -- query-level parallelism ---------------------------------------------------

class ParallelEngine(SeraphEngine):
    """A SeraphEngine that offloads full evaluations to worker processes.

    Construct through :func:`repro.build_engine`
    (``EngineConfig(parallel_workers=N)``) or directly.  ``workers``
    sizes the process pool; ``0`` means ``os.cpu_count()``.  The pool is
    created lazily on the first offload
    and released by :meth:`close` (the engine is also a context
    manager); ``pool`` injects an externally managed executor instead —
    the engine then never shuts it down.

    Emissions are byte-identical to the serial engine: only the pure
    snapshot evaluation (:func:`repro.seraph.semantics.execute_body`)
    moves to a worker, and results are applied in serial firing order.

    The pool lives behind a :class:`PoolSupervisor`:
    ``max_worker_restarts`` is the crash budget before degrading to
    in-parent execution, ``task_timeout`` bounds each offloaded group's
    wall clock, and ``chaos`` (a
    :class:`~repro.runtime.faults.ChaosConfig`) turns on seeded fault
    injection against the pool.  ``supervisor`` injects a pre-built
    supervisor instead (tests use this to inject crashy pool factories).
    """

    def __init__(
        self,
        *args,
        workers: Optional[int] = None,
        pool: Optional[ProcessPoolExecutor] = None,
        offload_threshold: float = DEFAULT_OFFLOAD_THRESHOLD,
        max_worker_restarts: Optional[int] = None,
        task_timeout: Optional[float] = None,
        chaos=None,
        supervisor: Optional[PoolSupervisor] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        resolved = workers
        if resolved is None or resolved <= 0:
            resolved = os.cpu_count() or 1
        self.workers = int(resolved)
        self.offload_threshold = float(offload_threshold)
        self.parallel_metrics = ParallelMetrics()
        if supervisor is None:
            config = SupervisorConfig(
                max_restarts=(
                    max_worker_restarts if max_worker_restarts is not None
                    else SupervisorConfig.max_restarts
                ),
                task_timeout=task_timeout,
            )
            supervisor = PoolSupervisor(
                self.workers, config=config, pool=pool, obs=self.obs,
                chaos=chaos,
            )
        self.supervisor = supervisor

    # -- pool lifecycle ------------------------------------------------------
    #
    # The executor itself belongs to the supervisor; `_pool`/`_owns_pool`
    # stay as delegating properties because callers (and tests) inject
    # and inspect them on the engine.

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return self.supervisor.pool

    @_pool.setter
    def _pool(self, value: Optional[ProcessPoolExecutor]) -> None:
        self.supervisor._pool = value

    @property
    def _owns_pool(self) -> bool:
        return self.supervisor._owns_pool

    @_owns_pool.setter
    def _owns_pool(self, value: bool) -> None:
        self.supervisor._owns_pool = value

    def close(self) -> None:
        """Shut down the worker pool (no-op for injected pools)."""
        self.supervisor.close()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation loop -----------------------------------------------------

    def advance_to(self, instant: TimeInstant) -> List[Emission]:
        """Serial-identical firing, batched computation.

        Each pass collects the same due set, in the same order, as the
        serial loop; window advancement and emission delivery stay
        serial, only the pure table computations fan out.

        Dataflow stages act as barriers between the window-group
        batches (docs/DATAFLOW.md): a chunk whose queries consume a
        derived stream produced earlier in the pass only begins — i.e.
        advances its windows — after the producer chunk has finished and
        materialized.  Without ``INTO`` queries there is exactly one
        chunk per pass, the pre-dataflow behavior.
        """
        emissions: List[Emission] = []
        obs = self.obs
        while True:
            due = self._due_queries(instant)
            if not due:
                break
            self.parallel_metrics.batches += 1
            staged = obs.enabled and not self._dataflow.is_trivial
            for index, chunk in enumerate(self._dataflow_stages(due)):
                if staged:
                    started = time.perf_counter()
                pendings = [
                    self._begin_evaluation(registered)
                    for registered in chunk
                ]
                tables = self._compute_batch(pendings)
                for pending, table in zip(pendings, tables):
                    emissions.append(self._finish_evaluation(pending, table))
                if staged:
                    obs.tracer.add_completed(
                        "dataflow_stage", time.perf_counter() - started,
                        stage=index, queries=len(chunk),
                    )
                    obs.registry.inc("dataflow.stages")
        self._evict()
        return emissions

    def _compute_batch(
        self, pendings: List[_PendingEvaluation]
    ) -> List[Table]:
        """Compute one pass's tables, offloading where it pays off."""
        tables: List[Optional[Table]] = [None] * len(pendings)
        graph_cache: Dict[int, object] = {}
        offload: List[int] = []
        for index, pending in enumerate(pendings):
            if not self._needs_full_evaluation(pending):
                # Reuse memo / delta path: cheap and stateful — in-parent.
                tables[index] = self._compute_table(pending)
            elif self._should_offload(pending, graph_cache):
                self.parallel_metrics.scheduler_parallel += 1
                offload.append(index)
            else:
                self.parallel_metrics.scheduler_serial += 1
                tables[index] = self._compute_table(pending)
                self.parallel_metrics.inline_evaluations += 1
        if offload:
            self._offload(pendings, offload, graph_cache, tables)
        return tables  # type: ignore[return-value]

    def _should_offload(
        self, pending: _PendingEvaluation, graph_cache: Dict[int, object]
    ) -> bool:
        """Cost-model verdict: is this evaluation worth the IPC tax?"""
        return self._estimated_cost(pending, graph_cache) \
            >= self.offload_threshold

    def _estimated_cost(
        self, pending: _PendingEvaluation, graph_cache: Dict[int, object]
    ) -> float:
        bound = frozenset((WIN_START, WIN_END))
        total = 0.0
        for clause in pending.registered.query.body:
            if not isinstance(clause, SeraphMatch):
                continue
            state = pending.registered.windows.get(
                (clause.stream_name, clause.within)
            )
            if state is None:
                continue
            graph = self._batch_graph(state, graph_cache)
            total += pattern_cost(clause.match.pattern, graph, bound)
        return total

    @staticmethod
    def _batch_graph(state, graph_cache: Dict[int, object]):
        """One snapshot per window state per pass (advance is done)."""
        graph = graph_cache.get(id(state))
        if graph is None:
            graph = state.graph()
            graph_cache[id(state)] = graph
        return graph

    def _offload(
        self,
        pendings: List[_PendingEvaluation],
        offload: List[int],
        graph_cache: Dict[int, object],
        tables: List[Optional[Table]],
    ) -> None:
        """Ship offloaded evaluations to the pool, grouped by signature.

        Queries sharing the same window states (and instant) land in one
        task, so each group's snapshots are pickled exactly once.
        """
        groups: Dict[Tuple, List[int]] = {}
        for index in offload:
            pending = pendings[index]
            signature = (
                tuple(
                    sorted(
                        (key, id(state))
                        for key, state in pending.registered.windows.items()
                    )
                ),
                pending.instant,
            )
            groups.setdefault(signature, []).append(index)
        payloads: List[tuple] = []
        group_indices: List[List[int]] = []
        signatures: List[tuple] = []
        for indices in groups.values():
            first = pendings[indices[0]]
            graphs = {
                key: self._batch_graph(state, graph_cache)
                for key, state in first.registered.windows.items()
            }

            def stats_for(stream_name, width, _graphs=graphs):
                return _graphs[(stream_name, width)]

            tasks = []
            for i in indices:
                registered = pendings[i].registered
                plan = self._physical_plan(registered, stats_for)
                tasks.append(
                    (
                        registered.query.render(),
                        pendings[i].interval.start,
                        pendings[i].interval.end,
                        (plan.band, plan) if plan is not None else None,
                    )
                )
            payloads.append((graphs, tasks, self.vectorized))
            group_indices.append(indices)
            # A stable, pickle-friendly label for failures: the group's
            # window keys plus the evaluation instant.
            signatures.append(
                tuple(sorted(first.registered.windows.keys()))
                + (first.instant,)
            )
            self.parallel_metrics.offloaded_groups += 1
        self.parallel_metrics.max_queue_depth = max(
            self.parallel_metrics.max_queue_depth, len(payloads)
        )
        results = self.supervisor.run_batch(
            _worker_evaluate_group, payloads, signatures
        )
        for result, indices in zip(results, group_indices):
            (worker_pid, elapsed, group_tables, timings,
             rows_per_task, prunes_per_task) = result
            self.parallel_metrics.observe_task(worker_pid, elapsed)
            for position, (i, table) in enumerate(
                zip(indices, group_tables)
            ):
                registered = pendings[i].registered
                if registered.delta_state is not None:
                    # Same bookkeeping the serial full path performs: an
                    # eligible query evaluated outside the delta path no
                    # longer tracks the window content.
                    registered.delta_state.invalidate()
                tables[i] = table
                plan_rows = registered.plan_rows
                for op_id, count in rows_per_task[position].items():
                    plan_rows[op_id] = plan_rows.get(op_id, 0) + count
                    if self.obs.enabled:
                        self.obs.registry.inc(
                            f"query.{registered.name}.op.{op_id}.rows",
                            count,
                        )
                if prunes_per_task[position]:
                    self._merge_plan_prunes(
                        registered, prunes_per_task[position]
                    )
                self.parallel_metrics.offloaded_evaluations += 1
                if self.obs.enabled:
                    offset, duration = timings[position]
                    self.obs.tracer.add_completed(
                        "worker_evaluate",
                        duration,
                        parent=pendings[i].span,
                        start_offset=offset,
                        pid=worker_pid,
                        rows=len(table),
                    )
                    self.obs.record_stage(
                        registered.name, "worker_evaluate", duration
                    )
                    self.obs.registry.inc("parallel.offloaded_evaluations")

    def status(self) -> Dict[str, object]:
        info = super().status()
        info["parallel"] = dict(
            self.parallel_metrics.as_dict(), workers=self.workers
        )
        info["supervision"] = self.supervisor.as_dict()
        return info


# -- partition-level parallelism -----------------------------------------------

def dead_letter_partition_handler(
    dead_letters: DeadLetterQueue,
) -> Callable[[StreamElement, PartitionError], None]:
    """An ``on_error`` callback routing classifier failures to a DLQ."""

    def handle(element: StreamElement, error: PartitionError) -> None:
        dead_letters.append(
            element,
            reason=str(error),
            error=error.__cause__ if error.__cause__ is not None else error,
            instant=element.instant,
        )

    return handle


def merge_emissions(
    per_shard: List[List[Emission]], query_order: List[str]
) -> List[Emission]:
    """K-way merge of per-shard emission streams.

    Emissions are ordered by (evaluation instant, query registration
    order); the same (instant, query) fired on several shards merges into
    one emission whose table is the bag union of the shard tables, taken
    in shard order.  The result is deterministic for any shard count —
    ``merge_emissions([e], ...)`` is the identity on a single shard.
    """
    rank = {name: position for position, name in enumerate(query_order)}
    buckets: Dict[Tuple[TimeInstant, int], List[Emission]] = {}
    for emissions in per_shard:  # shard order → deterministic union order
        for emission in emissions:
            if emission.query_name not in rank:
                raise EngineError(
                    f"emission from unregistered query "
                    f"{emission.query_name!r}"
                )
            key = (emission.instant, rank[emission.query_name])
            buckets.setdefault(key, []).append(emission)
    merged: List[Emission] = []
    for (instant, position) in sorted(buckets):
        entries = buckets[(instant, position)]
        table = entries[0].table.table
        for emission in entries[1:]:
            table = table.bag_union(emission.table.table)
        merged.append(
            Emission(
                query_name=query_order[position],
                instant=instant,
                table=TimeAnnotatedTable(
                    table=table, interval=entries[0].table.interval
                ),
            )
        )
    return merged


SHARDED_CHECKPOINT_VERSION = 1


class ShardedEngine:
    """N engine replicas over logical sub-streams of one input stream.

    ``classify`` routes each element to a logical sub-stream name
    (:func:`repro.stream.partition.partition_elements`); sub-streams are
    assigned to ``shards`` shards in first-seen round-robin order, and
    each shard runs a full :class:`SeraphEngine` replica with every
    query registered.  ``workers > 1`` runs shard slices in a process
    pool; ``workers=1`` runs them in-process — the merged emissions are
    identical either way (:func:`merge_emissions` defines the order).

    The sharded run equals a single-engine run over the union stream
    exactly when the workload decomposes along the classifier — no
    pattern match spans two sub-streams (e.g. per-tenant components).
    That is the deployment the paper's future-work item (ii) describes;
    the classifier choice is the operator's correctness obligation.

    Classifier failures follow the runtime's dead-letter policy: with a
    ``dead_letters`` queue the offending element is quarantined and the
    run continues; without one the wrapped :class:`PartitionError`
    propagates (fail-fast).
    """

    def __init__(
        self,
        queries: Iterable[str],
        classify: Callable[[StreamElement], str],
        shards: int = 2,
        workers: int = 1,
        engine_options: Optional[dict] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        pool: Optional[ProcessPoolExecutor] = None,
        max_worker_restarts: Optional[int] = None,
        task_timeout: Optional[float] = None,
        chaos=None,
        supervisor: Optional[PoolSupervisor] = None,
    ):
        if shards <= 0:
            raise EngineError("shards must be positive")
        self.queries = [
            query if isinstance(query, str) else query.render()
            for query in queries
        ]
        self.classify = classify
        self.shards = int(shards)
        self.workers = int(workers)
        self.engine_options = dict(engine_options or {})
        self.dead_letters = dead_letters
        self.parallel_metrics = ParallelMetrics()
        if supervisor is None:
            config = SupervisorConfig(
                max_restarts=(
                    max_worker_restarts if max_worker_restarts is not None
                    else SupervisorConfig.max_restarts
                ),
                task_timeout=task_timeout,
            )
            supervisor = PoolSupervisor(
                min(self.workers, self.shards) or 1,
                config=config, pool=pool, chaos=chaos,
            )
        self.supervisor = supervisor
        #: logical sub-stream name → shard id, in first-seen order.
        self.assignment: Dict[str, int] = {}
        self._shard_states: List[Optional[dict]] = [None] * self.shards
        self._query_order = [
            parse_seraph(text).name for text in self.queries
        ]

    # -- pool lifecycle ------------------------------------------------------

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return self.supervisor.pool

    @_pool.setter
    def _pool(self, value: Optional[ProcessPoolExecutor]) -> None:
        self.supervisor._pool = value

    @property
    def _owns_pool(self) -> bool:
        return self.supervisor._owns_pool

    @_owns_pool.setter
    def _owns_pool(self, value: bool) -> None:
        self.supervisor._owns_pool = value

    def close(self) -> None:
        self.supervisor.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing -------------------------------------------------------------

    def _shard_of(self, partition: str) -> int:
        shard = self.assignment.get(partition)
        if shard is None:
            shard = len(self.assignment) % self.shards
            self.assignment[partition] = shard
        return shard

    def _route(
        self, elements: Iterable[StreamElement]
    ) -> List[List[StreamElement]]:
        """Partition, assign, and merge back into one slice per shard.

        Within a shard, elements are ordered by (instant, partition
        assignment order) — a deterministic interleaving that keeps each
        sub-stream's arrival order intact.
        """
        on_error = (
            dead_letter_partition_handler(self.dead_letters)
            if self.dead_letters is not None else None
        )
        partitions = partition_elements(
            elements, self.classify, on_error=on_error
        )
        slices: List[List[Tuple[int, int, StreamElement]]] = [
            [] for _ in range(self.shards)
        ]
        for order, (partition, routed) in enumerate(partitions.items()):
            shard = self._shard_of(partition)
            for element in routed:
                slices[shard].append((element.instant, order, element))
        out: List[List[StreamElement]] = []
        for slice_entries in slices:
            slice_entries.sort(key=lambda entry: (entry[0], entry[1]))
            out.append([element for _i, _o, element in slice_entries])
        return out

    # -- running -------------------------------------------------------------

    def run(
        self,
        elements: Iterable[StreamElement],
        until: Optional[TimeInstant] = None,
    ) -> List[Emission]:
        """Route a (finite) stream through the shard replicas and merge.

        Callable repeatedly: replica state persists across calls (via
        checkpoint documents when running in workers)."""
        slices = self._route(elements)
        if until is None:
            instants = [
                slice_elements[-1].instant
                for slice_elements in slices if slice_elements
            ]
            until = max(instants) if instants else None
        self.parallel_metrics.batches += 1
        if self.workers > 1:
            per_shard = self._run_in_workers(slices, until)
        else:
            per_shard = self._run_inline(slices, until)
        return merge_emissions(per_shard, self._query_order)

    def _payload(self, shard: int, slice_elements, until):
        return (
            self._shard_states[shard],
            self.queries,
            self.engine_options,
            slice_elements,
            until,
        )

    def _run_inline(self, slices, until) -> List[List[Emission]]:
        per_shard: List[List[Emission]] = []
        for shard, slice_elements in enumerate(slices):
            _pid, elapsed, emissions, state = _worker_run_shard(
                self._payload(shard, slice_elements, until)
            )
            self.parallel_metrics.inline_evaluations += len(emissions)
            self.parallel_metrics.observe_task(shard, elapsed)
            self._shard_states[shard] = state
            per_shard.append(emissions)
        return per_shard

    def _run_in_workers(self, slices, until) -> List[List[Emission]]:
        payloads = [
            self._payload(shard, slice_elements, until)
            for shard, slice_elements in enumerate(slices)
        ]
        signatures = [("shard", shard) for shard in range(len(slices))]
        self.parallel_metrics.max_queue_depth = max(
            self.parallel_metrics.max_queue_depth, len(payloads)
        )
        results = self.supervisor.run_batch(
            _worker_run_shard, payloads, signatures
        )
        per_shard: List[List[Emission]] = []
        for shard, result in enumerate(results):
            worker_pid, elapsed, emissions, state = result
            self.parallel_metrics.observe_task(worker_pid, elapsed)
            self.parallel_metrics.offloaded_evaluations += len(emissions)
            self.parallel_metrics.offloaded_groups += 1
            self._shard_states[shard] = state
            per_shard.append(emissions)
        return per_shard

    def status(self) -> Dict[str, object]:
        """Operational snapshot mirroring the engines' ``status()``."""
        return {
            "parallel": dict(
                self.parallel_metrics.as_dict(),
                workers=self.workers, shards=self.shards,
            ),
            "supervision": self.supervisor.as_dict(),
        }

    # -- checkpoint ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe checkpoint: shard assignment + per-replica state.

        The classifier is code, not data — restoring requires passing
        the same ``classify`` to :meth:`from_dict`.
        """
        options = dict(self.engine_options)
        policy = options.get("policy")
        if isinstance(policy, ActiveSubstreamPolicy):
            options["policy"] = policy.name
        static = options.get("static_graph")
        if static is not None:
            options["static_graph"] = graph_to_dict(static)
        return {
            "version": SHARDED_CHECKPOINT_VERSION,
            "shards": self.shards,
            "workers": self.workers,
            "queries": list(self.queries),
            "engine_options": options,
            "assignment": dict(self.assignment),
            "shard_states": list(self._shard_states),
        }

    @classmethod
    def from_dict(
        cls,
        data: dict,
        classify: Callable[[StreamElement], str],
        dead_letters: Optional[DeadLetterQueue] = None,
        workers: Optional[int] = None,
    ) -> "ShardedEngine":
        try:
            version = data["version"]
            if version != SHARDED_CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported sharded checkpoint version {version!r}"
                )
            options = dict(data["engine_options"])
            if isinstance(options.get("policy"), str):
                options["policy"] = ActiveSubstreamPolicy[options["policy"]]
            if options.get("static_graph") is not None:
                options["static_graph"] = graph_from_dict(
                    options["static_graph"]
                )
            engine = cls(
                queries=data["queries"],
                classify=classify,
                shards=int(data["shards"]),
                workers=int(workers if workers is not None
                            else data["workers"]),
                engine_options=options,
                dead_letters=dead_letters,
            )
            engine.assignment = {
                name: int(shard)
                for name, shard in data["assignment"].items()
            }
            states = list(data["shard_states"])
            if len(states) != engine.shards:
                raise CheckpointError(
                    "shard state count does not match shard count"
                )
            engine._shard_states = states
            return engine
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed sharded checkpoint document: {exc!r}"
            ) from exc


def run_partitioned(
    queries: Iterable[str],
    elements: Iterable[StreamElement],
    classify: Callable[[StreamElement], str],
    shards: int = 2,
    workers: int = 1,
    until: Optional[TimeInstant] = None,
    engine_options: Optional[dict] = None,
    dead_letters: Optional[DeadLetterQueue] = None,
) -> List[Emission]:
    """One-shot partition-parallel run (the future-work item ii entry
    point): route ``elements`` into logical sub-streams, evaluate every
    query on each shard, and k-way-merge the emissions."""
    with ShardedEngine(
        queries=queries,
        classify=classify,
        shards=shards,
        workers=workers,
        engine_options=engine_options,
        dead_letters=dead_letters,
    ) as engine:
        return engine.run(elements, until=until)
