"""Dead-letter quarantine for inputs the runtime refused to process.

A :class:`DeadLetterQueue` records every quarantined input together with
*why* it was quarantined (human-readable reason + the error class name)
and *when* (a monotonically increasing arrival counter plus the stream
instant when one is known).  Entries keep the original payload object, so
a fixed-up replay is a plain loop over :meth:`DeadLetterQueue.replay`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional

from repro.metrics import ResilienceMetrics


@dataclass(frozen=True)
class DeadLetterEntry:
    """One quarantined input."""

    payload: Any                      # the offending object, as received
    reason: str                       # human-readable diagnosis
    error: str                        # raising error class name ("" if none)
    stream: Optional[str] = None      # target stream, when known
    instant: Optional[int] = None     # element instant, when decodable
    sequence: int = 0                 # arrival order within the queue

    def to_dict(self) -> dict:
        """JSON-safe rendering (payloads fall back to ``repr``)."""
        return {
            "sequence": self.sequence,
            "reason": self.reason,
            "error": self.error,
            "stream": self.stream,
            "instant": self.instant,
            "payload": _json_safe(self.payload),
        }


def _json_safe(payload: Any) -> Any:
    from repro.graph.io import graph_to_dict
    from repro.stream.stream import StreamElement

    if isinstance(payload, StreamElement):
        return {"instant": payload.instant,
                "graph": graph_to_dict(payload.graph)}
    try:
        json.dumps(payload)
        return payload
    except (TypeError, ValueError):
        return repr(payload)


class DeadLetterQueue:
    """Replayable quarantine of refused inputs.

    ``capacity`` bounds memory: when full, the oldest entry is dropped
    (the sequence numbers keep counting, so loss is observable).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        metrics: Optional[ResilienceMetrics] = None,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("dead-letter capacity must be positive")
        self.capacity = capacity
        self.metrics = metrics
        self._entries: List[DeadLetterEntry] = []
        self._next_sequence = 0

    def append(
        self,
        payload: Any,
        reason: str,
        error: Optional[BaseException] = None,
        stream: Optional[str] = None,
        instant: Optional[int] = None,
    ) -> DeadLetterEntry:
        entry = DeadLetterEntry(
            payload=payload,
            reason=reason,
            error=type(error).__name__ if error is not None else "",
            stream=stream,
            instant=instant,
            sequence=self._next_sequence,
        )
        self._next_sequence += 1
        self._entries.append(entry)
        if self.capacity is not None and len(self._entries) > self.capacity:
            del self._entries[0]
        if self.metrics is not None:
            self.metrics.dead_lettered += 1
        return entry

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetterEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def entries(self) -> List[DeadLetterEntry]:
        return list(self._entries)

    @property
    def total_appended(self) -> int:
        """Lifetime count, including entries evicted by the capacity cap."""
        return self._next_sequence

    def drain(self) -> List[DeadLetterEntry]:
        """Remove and return all entries (e.g. after a successful replay)."""
        entries, self._entries = self._entries, []
        return entries

    def restore(self, entries: List[DeadLetterEntry], total: int) -> None:
        """Reload checkpointed quarantine state (bypasses metrics — the
        restored counters already account for these entries)."""
        self._entries = list(entries)
        self._next_sequence = total

    def replay(
        self, handler: Callable[[DeadLetterEntry], None]
    ) -> List[DeadLetterEntry]:
        """Feed every entry to ``handler``; entries the handler accepts
        (no exception) are removed, failing entries stay quarantined."""
        remaining: List[DeadLetterEntry] = []
        replayed: List[DeadLetterEntry] = []
        for entry in self._entries:
            try:
                handler(entry)
            except Exception:
                remaining.append(entry)
            else:
                replayed.append(entry)
        self._entries = remaining
        return replayed

    def to_jsonl(self) -> str:
        """One JSON object per entry — the quarantine audit log."""
        return "\n".join(
            json.dumps(entry.to_dict(), sort_keys=True)
            for entry in self._entries
        )

    def __repr__(self) -> str:
        return (f"DeadLetterQueue({len(self._entries)} entries, "
                f"{self._next_sequence} lifetime)")
