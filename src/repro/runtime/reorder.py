"""Bounded out-of-order tolerance: a reorder buffer with a watermark.

The paper's stream model (Definition 5.2) requires non-decreasing
arrival instants, and the seed engine enforces it by raising
:class:`~repro.errors.OutOfOrderEventError`.  Real queues deliver
slightly reordered batches, so the runtime puts a :class:`ReorderBuffer`
in front of the engine:

* the **watermark** is the largest instant seen so far;
* an element is *ripe* — safe to release in sorted order — once the
  watermark has advanced past ``instant + allowed_lateness``;
* an element older than the release **frontier** (everything at or
  before it was already released) is *too late*: per policy it is
  dropped, dead-lettered, or raised as
  :class:`~repro.errors.LateEventError`.

With ``allowed_lateness=0`` the buffer is a transparent pass-through for
in-order streams: each arrival immediately advances the watermark past
itself and is released on the spot.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.errors import LateEventError
from repro.graph.temporal import TimeInstant
from repro.metrics import ResilienceMetrics
from repro.runtime.deadletter import DeadLetterQueue
from repro.runtime.policies import FaultPolicy
from repro.stream.stream import StreamElement


class ReorderBuffer:
    """Re-sequences bounded out-of-order arrivals for one stream."""

    def __init__(
        self,
        allowed_lateness: int = 0,
        late_policy: FaultPolicy = FaultPolicy.DEAD_LETTER,
        dead_letters: Optional[DeadLetterQueue] = None,
        metrics: Optional[ResilienceMetrics] = None,
        stream: Optional[str] = None,
        registry=None,
    ):
        if allowed_lateness < 0:
            raise ValueError("allowed lateness must be >= 0")
        self.allowed_lateness = allowed_lateness
        self.late_policy = late_policy
        self.dead_letters = dead_letters
        self.metrics = metrics
        self.stream = stream
        #: optional :class:`repro.obs.registry.MetricsRegistry` mirroring
        #: the buffer's depth/watermark as live gauges.
        self.registry = registry
        self._pending: List[Tuple[TimeInstant, int, StreamElement]] = []
        self._arrivals = 0
        self._watermark: Optional[TimeInstant] = None
        self._frontier: Optional[TimeInstant] = None  # released through here

    # -- state -------------------------------------------------------------

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Largest instant observed so far."""
        return self._watermark

    @property
    def frontier(self) -> Optional[TimeInstant]:
        """Instant through which elements have been released in order."""
        return self._frontier

    @property
    def pending(self) -> List[StreamElement]:
        """Buffered elements, in release (instant, arrival) order."""
        return [item[2] for item in sorted(self._pending)]

    def __len__(self) -> int:
        return len(self._pending)

    # -- core --------------------------------------------------------------

    def offer(self, element: StreamElement) -> List[StreamElement]:
        """Accept one arrival; return the elements that became ripe.

        Ripe elements come out sorted by instant (ties in arrival order),
        so feeding them straight into the engine never trips its
        non-decreasing-instant check.
        """
        if self._frontier is not None and element.instant < self._frontier:
            self._handle_late(element)
            return []
        if self.metrics is not None:
            if self._watermark is not None and element.instant < self._watermark:
                self.metrics.reordered += 1
        heapq.heappush(
            self._pending, (element.instant, self._arrivals, element)
        )
        self._arrivals += 1
        if self._watermark is None or element.instant > self._watermark:
            self._watermark = element.instant
        released = self._release_ripe()
        self._publish_gauges()
        return released

    def flush(self) -> List[StreamElement]:
        """End-of-stream: release everything still buffered, in order."""
        released: List[StreamElement] = []
        while self._pending:
            released.append(heapq.heappop(self._pending)[2])
        if released:
            self._advance_frontier(released[-1].instant)
        self._publish_gauges()
        return released

    def _publish_gauges(self) -> None:
        if self.registry is None:
            return
        label = self.stream if self.stream is not None else "default"
        self.registry.set(
            f"resilience.buffer.{label}.pending", len(self._pending)
        )
        if self._watermark is not None:
            self.registry.set(
                f"resilience.buffer.{label}.watermark", self._watermark
            )

    def _release_ripe(self) -> List[StreamElement]:
        ripe_until = self._watermark - self.allowed_lateness
        released: List[StreamElement] = []
        while self._pending and self._pending[0][0] <= ripe_until:
            released.append(heapq.heappop(self._pending)[2])
        self._advance_frontier(ripe_until)
        return released

    def _advance_frontier(self, instant: TimeInstant) -> None:
        if self._frontier is None or instant > self._frontier:
            self._frontier = instant

    def restore_state(
        self,
        watermark: Optional[TimeInstant],
        frontier: Optional[TimeInstant],
        pending: List[StreamElement],
    ) -> None:
        """Reload checkpointed buffer state (pending in release order)."""
        self._watermark = watermark
        self._frontier = frontier
        self._pending = []
        self._arrivals = 0
        for element in pending:
            heapq.heappush(
                self._pending, (element.instant, self._arrivals, element)
            )
            self._arrivals += 1

    def _handle_late(self, element: StreamElement) -> None:
        if self.metrics is not None:
            self.metrics.late_events += 1
        if self.late_policy is FaultPolicy.FAIL_FAST:
            raise LateEventError(
                f"element at {element.instant} is beyond the allowed "
                f"lateness (release frontier {self._frontier}, "
                f"allowed lateness {self.allowed_lateness})"
            )
        if self.metrics is not None:
            self.metrics.late_dropped += 1
        if (
            self.late_policy is FaultPolicy.DEAD_LETTER
            and self.dead_letters is not None
        ):
            self.dead_letters.append(
                element,
                reason=(
                    f"late event: instant {element.instant} <= release "
                    f"frontier {self._frontier}"
                ),
                stream=self.stream,
                instant=element.instant,
            )

    def __repr__(self) -> str:
        return (
            f"ReorderBuffer(lateness={self.allowed_lateness}, "
            f"pending={len(self._pending)}, watermark={self._watermark}, "
            f"frontier={self._frontier})"
        )
