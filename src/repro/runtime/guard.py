"""Guarded MERGE-ingestion: fault policies for the Kafka-style pipeline.

:class:`GuardedIngestionPipeline` wraps the Listing-4 style
:class:`~repro.usecases.ingestion.IngestionPipeline`, validating raw
queue messages *before* they are accepted.  Validation failures —
:class:`~repro.errors.IngestionError` and its friends, i.e. exactly the
library-detected bad-input errors, never programming errors — are
handled per :class:`~repro.runtime.policies.FaultPolicy`: re-raised,
silently skipped, or quarantined in the dead-letter queue.

``feed_raw`` additionally accepts the wire form of a message (a plain
dict or its JSON string), so a whole malformed payload — wrong types,
missing keys, unknown kinds — is quarantined instead of crashing the
consumer.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional

from repro.errors import IngestionError, PoisonMessageError, StreamError
from repro.graph.temporal import TimeInstant
from repro.metrics import ResilienceMetrics
from repro.runtime.deadletter import DeadLetterQueue
from repro.runtime.policies import FaultPolicy
from repro.stream.stream import StreamElement
from repro.usecases.ingestion import (
    IngestionPipeline,
    RentalMessage,
    validate_message,
)

#: The exact fields of a raw queue message on the wire.
_MESSAGE_FIELDS = ("kind", "vehicle", "station", "user", "time",
                   "duration", "ebike")


def message_from_payload(payload: Any) -> RentalMessage:
    """Decode a wire payload (dict or JSON string) into a validated
    :class:`RentalMessage`; raises :class:`PoisonMessageError` when the
    payload shape is wrong and :class:`IngestionError` when the decoded
    message violates the ingestion contract."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PoisonMessageError(
                f"message payload is not valid JSON: {exc}"
            ) from exc
    if not isinstance(payload, dict):
        raise PoisonMessageError(
            f"message payload of type {type(payload).__name__} "
            "is not an object"
        )
    unknown = set(payload) - set(_MESSAGE_FIELDS)
    if unknown:
        raise PoisonMessageError(
            f"message payload has unknown fields {sorted(unknown)}"
        )
    try:
        message = RentalMessage(
            kind=payload["kind"],
            vehicle=payload["vehicle"],
            station=payload["station"],
            user=payload["user"],
            time=payload["time"],
            duration=payload.get("duration"),
            ebike=bool(payload.get("ebike", False)),
        )
    except KeyError as exc:
        raise PoisonMessageError(f"message payload misses key {exc}") from exc
    validate_message(message)
    return message


class GuardedIngestionPipeline:
    """An :class:`IngestionPipeline` that survives malformed messages."""

    def __init__(
        self,
        pipeline: IngestionPipeline,
        policy: FaultPolicy = FaultPolicy.DEAD_LETTER,
        dead_letters: Optional[DeadLetterQueue] = None,
        metrics: Optional[ResilienceMetrics] = None,
    ):
        self.pipeline = pipeline
        self.policy = policy
        self.metrics = metrics if metrics is not None else ResilienceMetrics()
        self.dead_letters = dead_letters if dead_letters is not None \
            else DeadLetterQueue(metrics=self.metrics)
        if self.dead_letters.metrics is None:
            self.dead_letters.metrics = self.metrics

    @property
    def store(self):
        return self.pipeline.store

    def feed(self, message: RentalMessage) -> bool:
        """Validate and accept one message; returns False when the
        message was refused (and skipped or quarantined per policy)."""
        try:
            validate_message(message)
            self.pipeline.feed(message)
        except StreamError as exc:  # IngestionError is a StreamError
            self._refuse(message, exc)
            return False
        self.metrics.ingested += 1
        return True

    def feed_raw(self, payload: Any) -> bool:
        """Decode a wire payload, then feed it; malformed payloads are
        refused per the policy instead of raising ``KeyError``."""
        try:
            message = message_from_payload(payload)
            self.pipeline.feed(message)
        except StreamError as exc:
            self._refuse(payload, exc)
            return False
        self.metrics.ingested += 1
        return True

    def seal_until(self, until: TimeInstant) -> List[StreamElement]:
        return self.pipeline.seal_until(until)

    def _refuse(self, payload: Any, error: StreamError) -> None:
        self.metrics.poison_rejected += 1
        if self.policy is FaultPolicy.FAIL_FAST:
            raise error
        if self.policy is FaultPolicy.SKIP:
            self.metrics.poison_skipped += 1
            return
        instant = None
        if isinstance(payload, RentalMessage) and isinstance(
            payload.time, int
        ):
            instant = payload.time
        self.dead_letters.append(
            payload, reason=str(error), error=error, instant=instant
        )
