"""Fault-handling policies of the resilience layer.

Every place the runtime can absorb a failure (poison payloads at
ingestion, events beyond the allowed lateness, sinks that keep failing
after retries) is governed by one :class:`FaultPolicy` value:

* ``FAIL_FAST`` — re-raise the typed library error; the run aborts.
  This is the seed engine's original behaviour and the right choice for
  development, where a bad input is a bug to fix, not traffic to survive.
* ``SKIP`` — drop the offending input silently (counted in metrics).
* ``DEAD_LETTER`` — quarantine the offending input in a replayable
  :class:`~repro.runtime.deadletter.DeadLetterQueue` together with the
  reason and error, and continue.
"""

from __future__ import annotations

import enum


class FaultPolicy(enum.Enum):
    """What to do when the runtime catches a recoverable library error."""

    FAIL_FAST = "fail_fast"
    SKIP = "skip"
    DEAD_LETTER = "dead_letter"

    @staticmethod
    def parse(text: str) -> "FaultPolicy":
        cleaned = text.strip().lower().replace("-", "_")
        for policy in FaultPolicy:
            if policy.value == cleaned:
                return policy
        raise ValueError(f"unknown fault policy {text!r}")
