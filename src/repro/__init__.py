"""Reproduction of *Seraph: Continuous Queries on Property Graph Streams*
(EDBT 2024).

Public API highlights
---------------------
* :class:`repro.graph.PropertyGraph`, :class:`repro.graph.GraphBuilder` —
  the property graph model (Definition 3.1).
* :func:`repro.cypher.run_cypher` — one-time core-Cypher evaluation
  (Section 3).
* :class:`repro.stream.PropertyGraphStream`,
  :class:`repro.stream.WindowConfig` — streams and time-based windows
  (Definitions 5.2, 5.9–5.11).
* :func:`repro.seraph.parse_seraph`, :class:`repro.seraph.SeraphEngine` —
  the Seraph language and its continuous engine (Sections 5–6).

* :class:`repro.EngineConfig`, :func:`repro.build_engine` — the one
  front door composing the serial/parallel core, the fault-tolerant
  wrapper, and the observability layer (docs/OBSERVABILITY.md).
* :class:`repro.SeraphService`, :class:`repro.ServiceConfig` — the
  multi-tenant continuous-query HTTP service over that front door
  (``python -m repro serve``; docs/SERVICE.md).

The export list is curated and pinned by test: everything in
``__all__`` is stable API surface; reach into submodules for the rest
at your own risk.

Quickstart::

    from repro import EngineConfig, build_engine, parse_seraph
    engine = build_engine(EngineConfig(observability=True))
    engine.register(parse_seraph(QUERY_TEXT))
    emissions = engine.run_stream(stream_elements)
"""

from repro.api import EngineConfig, build_engine
from repro.cypher import parse_cypher, run_cypher, run_update
from repro.errors import (
    AuthenticationError,
    CheckpointError,
    ConsumerLagError,
    CypherError,
    DataflowCycleError,
    DataflowError,
    EngineError,
    GraphError,
    QueryRegistryError,
    QuotaExceededError,
    ReproError,
    SeraphError,
    SeraphSemanticError,
    SeraphSyntaxError,
    ServiceError,
    StreamError,
    TenantQuarantinedError,
    UnknownStreamError,
    UnknownTenantError,
)
from repro.runtime.faults import ChaosConfig
from repro.metrics import RunReport, instrumented_run
from repro.obs import Observability
from repro.graph import (
    GraphBuilder,
    Node,
    Path,
    PropertyGraph,
    Record,
    Relationship,
    Table,
)
from repro.seraph import (
    CollectingSink,
    DataflowGraph,
    Emission,
    SeraphEngine,
    SeraphQuery,
    StreamMaterializer,
    parse_seraph,
)
from repro.seraph.explain import explain, explain_analyze, explain_dataflow
from repro.service import (
    SeraphService,
    ServiceClient,
    ServiceConfig,
    TenantQuotas,
    TenantSpec,
)
from repro.stream import (
    ActiveSubstreamPolicy,
    PropertyGraphStream,
    ReportPolicy,
    StreamElement,
    TimeAnnotatedTable,
    TimeInterval,
    WindowConfig,
)

__version__ = "1.1.0"

#: The curated public surface, pinned by ``tests/test_exports.py``.
#: Grouped: engine front door, language, data model, streams, service,
#: observability, typed errors.
__all__ = [
    # engine front door
    "EngineConfig",
    "build_engine",
    "ChaosConfig",
    "SeraphEngine",
    # language + explain
    "parse_seraph",
    "parse_cypher",
    "run_cypher",
    "run_update",
    "explain",
    "explain_analyze",
    "explain_dataflow",
    "SeraphQuery",
    "CollectingSink",
    "Emission",
    # dataflow chaining (EMIT ... INTO, docs/DATAFLOW.md)
    "DataflowGraph",
    "StreamMaterializer",
    # data model
    "GraphBuilder",
    "Node",
    "Path",
    "PropertyGraph",
    "Record",
    "Relationship",
    "Table",
    # streams + windows
    "ActiveSubstreamPolicy",
    "PropertyGraphStream",
    "ReportPolicy",
    "StreamElement",
    "TimeAnnotatedTable",
    "TimeInterval",
    "WindowConfig",
    # service
    "SeraphService",
    "ServiceClient",
    "ServiceConfig",
    "TenantQuotas",
    "TenantSpec",
    # observability
    "Observability",
    "RunReport",
    "instrumented_run",
    # typed errors
    "ReproError",
    "GraphError",
    "StreamError",
    "CypherError",
    "SeraphError",
    "SeraphSyntaxError",
    "SeraphSemanticError",
    "QueryRegistryError",
    "EngineError",
    "CheckpointError",
    "DataflowError",
    "DataflowCycleError",
    "UnknownStreamError",
    "ServiceError",
    "AuthenticationError",
    "UnknownTenantError",
    "QuotaExceededError",
    "TenantQuarantinedError",
    "ConsumerLagError",
]
