"""Reproduction of *Seraph: Continuous Queries on Property Graph Streams*
(EDBT 2024).

Public API highlights
---------------------
* :class:`repro.graph.PropertyGraph`, :class:`repro.graph.GraphBuilder` —
  the property graph model (Definition 3.1).
* :func:`repro.cypher.run_cypher` — one-time core-Cypher evaluation
  (Section 3).
* :class:`repro.stream.PropertyGraphStream`,
  :class:`repro.stream.WindowConfig` — streams and time-based windows
  (Definitions 5.2, 5.9–5.11).
* :func:`repro.seraph.parse_seraph`, :class:`repro.seraph.SeraphEngine` —
  the Seraph language and its continuous engine (Sections 5–6).

* :class:`repro.EngineConfig`, :func:`repro.build_engine` — the one
  front door composing the serial/parallel core, the fault-tolerant
  wrapper, and the observability layer (docs/OBSERVABILITY.md).

Quickstart::

    from repro import EngineConfig, build_engine, parse_seraph
    engine = build_engine(EngineConfig(observability=True))
    engine.register(parse_seraph(QUERY_TEXT))
    emissions = engine.run_stream(stream_elements)
"""

from repro.api import EngineConfig, build_engine
from repro.cypher import parse_cypher, run_cypher, run_update
from repro.runtime.faults import ChaosConfig
from repro.metrics import RunReport, instrumented_run
from repro.obs import Observability
from repro.graph import (
    GraphBuilder,
    Node,
    Path,
    PropertyGraph,
    Record,
    Relationship,
    Table,
)
from repro.seraph import (
    CollectingSink,
    Emission,
    SeraphEngine,
    SeraphQuery,
    parse_seraph,
)
from repro.stream import (
    ActiveSubstreamPolicy,
    PropertyGraphStream,
    ReportPolicy,
    StreamElement,
    TimeAnnotatedTable,
    TimeInterval,
    WindowConfig,
)

__version__ = "1.0.0"

__all__ = [
    "ActiveSubstreamPolicy",
    "ChaosConfig",
    "CollectingSink",
    "Emission",
    "EngineConfig",
    "Observability",
    "build_engine",
    "GraphBuilder",
    "Node",
    "Path",
    "PropertyGraph",
    "PropertyGraphStream",
    "Record",
    "Relationship",
    "ReportPolicy",
    "SeraphEngine",
    "SeraphQuery",
    "StreamElement",
    "Table",
    "TimeAnnotatedTable",
    "TimeInterval",
    "WindowConfig",
    "RunReport",
    "instrumented_run",
    "parse_cypher",
    "parse_seraph",
    "run_cypher",
    "run_update",
]
