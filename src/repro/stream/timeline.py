"""Time instants and intervals (Definition 5.1).

Ω is an infinite sequence of instants with constant unit; we realize
instants as integers (seconds, see :mod:`repro.graph.temporal`) and
intervals as left-closed right-open ``[start, end)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import TemporalError
from repro.graph.temporal import TimeInstant, format_hhmm


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A left-closed right-open interval τ = [start, end)."""

    start: TimeInstant
    end: TimeInstant

    def __post_init__(self):
        if self.end < self.start:
            raise TemporalError(
                f"interval end {self.end} precedes start {self.start}"
            )

    def __contains__(self, instant: object) -> bool:
        if not isinstance(instant, int):
            return False
        return self.start <= instant < self.end

    @property
    def duration(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.end == self.start

    def overlaps(self, other: "TimeInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return None
        return TimeInterval(start, end)

    def covers(self, other: "TimeInterval") -> bool:
        return self.start <= other.start and other.end <= self.end

    def shifted(self, delta: int) -> "TimeInterval":
        return TimeInterval(self.start + delta, self.end + delta)

    def instants(self, unit: int = 1) -> Iterator[TimeInstant]:
        """Enumerate the instants of the interval at the given unit."""
        if unit <= 0:
            raise TemporalError("time unit must be positive")
        return iter(range(self.start, self.end, unit))

    def __repr__(self) -> str:
        return f"[{self.start}, {self.end})"

    def render_hhmm(self) -> str:
        """Paper-style rendering, e.g. ``[14:40, 15:40)``."""
        return f"[{format_hhmm(self.start)}, {format_hhmm(self.end)})"
