"""Time-annotated and time-varying tables (Definitions 5.6, 5.7).

A *time-annotated table* extends a Cypher table with the reserved fields
``win_start`` and ``win_end`` holding the bounds of the window that
produced it.  A *time-varying table* maps every instant ω to the
time-annotated table valid at ω, subject to the paper's consistency,
chronologicality, and monotonicity constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.errors import TimeVaryingTableError
from repro.graph.table import Record, Table
from repro.graph.temporal import TimeInstant, format_hhmm
from repro.stream.timeline import TimeInterval

#: Reserved field names of Definition 5.6.
WIN_START = "win_start"
WIN_END = "win_end"
RESERVED_FIELDS = frozenset({WIN_START, WIN_END})


@dataclass(frozen=True)
class TimeAnnotatedTable:
    """A table annotated with the producing window τ = [win_start, win_end).

    ``table`` holds the plain records; :meth:`annotated_table` materializes
    the Definition 5.6 form where every record carries ``win_start`` and
    ``win_end`` fields.
    """

    table: Table
    interval: TimeInterval

    @property
    def win_start(self) -> TimeInstant:
        return self.interval.start

    @property
    def win_end(self) -> TimeInstant:
        return self.interval.end

    def __len__(self) -> int:
        return len(self.table)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.table)

    def annotated_table(self) -> Table:
        """Definition 5.6 form: records extended with win_start/win_end."""
        fields = set(self.table.fields) | RESERVED_FIELDS
        records = [
            record.with_field(WIN_START, self.interval.start).with_field(
                WIN_END, self.interval.end
            )
            for record in self.table
        ]
        return Table(records, fields=fields)

    def render(self, columns: Optional[List[str]] = None) -> str:
        """Paper-style rendering with HH:MM window bounds."""
        columns = columns or (sorted(self.table.fields) + [WIN_START, WIN_END])
        rows = Table(
            [
                record.with_field(WIN_START, format_hhmm(self.interval.start))
                .with_field(WIN_END, format_hhmm(self.interval.end))
                for record in self.table
            ],
            fields=set(self.table.fields) | RESERVED_FIELDS,
        )
        return rows.render(columns)

    def bag_equals(self, other: "TimeAnnotatedTable") -> bool:
        return self.interval == other.interval and self.table.bag_equals(other.table)


class TimeVaryingTable:
    """Ψ : Ω → time-annotated tables (Definition 5.7).

    Stored as the (finite) list of time-annotated tables produced so far,
    ordered by window opening bound.  ``at(ω)`` implements the paper's
    constraints: among the stored tables whose interval contains ω, return
    the one with the earliest opening bound (consistency +
    chronologicality); instants between stored intervals map to the empty
    table.
    """

    def __init__(self, entries: Iterable[TimeAnnotatedTable] = ()):
        self._entries: List[TimeAnnotatedTable] = []
        for entry in entries:
            self.append(entry)

    def append(self, entry: TimeAnnotatedTable) -> None:
        """Add the result of one evaluation.

        Monotonicity (Definition 5.7) requires subsequent instants to map
        to subsequent tables, i.e. window openings must not decrease.
        """
        if self._entries and entry.interval.start < self._entries[-1].interval.start:
            raise TimeVaryingTableError(
                "time-varying table entries must have non-decreasing window "
                f"openings; got {entry.interval} after "
                f"{self._entries[-1].interval}"
            )
        self._entries.append(entry)

    def at(self, instant: TimeInstant) -> Optional[TimeAnnotatedTable]:
        """Ψ(ω): earliest-opening stored table whose interval contains ω."""
        for entry in self._entries:
            if instant in entry.interval:
                return entry
        return None

    @property
    def entries(self) -> List[TimeAnnotatedTable]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TimeAnnotatedTable]:
        return iter(self._entries)

    def check_constraints(self) -> None:
        """Validate Definition 5.7's three constraints over stored entries.

        * consistency — every entry is a well-formed time-annotated table
          (guaranteed by construction; re-checked here),
        * chronologicality — ``at`` resolves overlaps to the earliest
          opening (checked by probing interval boundaries),
        * monotonicity — openings are non-decreasing.
        """
        for previous, current in zip(self._entries, self._entries[1:]):
            if current.interval.start < previous.interval.start:
                raise TimeVaryingTableError(
                    "monotonicity violated: window openings decrease"
                )
        for entry in self._entries:
            if entry.interval.is_empty():
                raise TimeVaryingTableError("empty window interval stored")
            resolved = self.at(entry.interval.start)
            if resolved is None:
                raise TimeVaryingTableError("consistency violated")
            if resolved.interval.start > entry.interval.start:
                raise TimeVaryingTableError(
                    "chronologicality violated: later-opening table returned"
                )
