"""Wall-clock replay of recorded streams (the "reactive" deployment mode).

A recorded stream carries logical instants; :class:`ReplayDriver` plays
it against an engine in real time (optionally accelerated), firing
evaluations exactly when their ET instants pass — the shape of the
paper's deployment, where results must be out "before the data becomes
stale".

The clock and sleep functions are injectable so tests run instantly with
a fake clock; production use passes nothing and gets ``time``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.errors import StreamError
from repro.graph.temporal import TimeInstant
from repro.stream.stream import StreamElement

if TYPE_CHECKING:  # imported lazily to avoid a package cycle
    from repro.seraph.engine import SeraphEngine
    from repro.seraph.sinks import Emission


class ReplayDriver:
    """Plays a recorded stream through an engine on a wall clock.

    ``speedup`` scales logical time to wall time (3600 ⇒ one logical hour
    per wall second).  The driver sleeps until each element's due time,
    ingests it, and advances the engine; between elements it also wakes
    for intermediate ET instants so evaluations fire on schedule rather
    than in bursts at the next arrival.
    """

    def __init__(
        self,
        engine: "SeraphEngine",
        speedup: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        max_wake_interval: Optional[float] = None,
    ):
        if speedup <= 0:
            raise StreamError("speedup must be positive")
        self.engine = engine
        self.speedup = speedup
        self._clock = clock
        self._sleep = sleep
        self._max_wake_interval = max_wake_interval

    def replay(
        self,
        elements: Iterable[StreamElement],
        until: Optional[TimeInstant] = None,
        stream: Optional[str] = None,
    ) -> List["Emission"]:
        """Run the whole replay; returns all emissions in firing order."""
        from repro.seraph.ast import DEFAULT_STREAM

        stream_name = stream if stream is not None else DEFAULT_STREAM
        ordered = list(elements)
        if not ordered:
            return []
        origin_logical = ordered[0].instant
        origin_wall = self._clock()
        emissions: List["Emission"] = []

        def wall_for(instant: TimeInstant) -> float:
            return origin_wall + (instant - origin_logical) / self.speedup

        def advance_clocked(target: TimeInstant) -> None:
            """Sleep-and-fire up to the logical target instant."""
            pending = self._next_due_eval()
            while pending is not None and pending <= target:
                self._sleep_until(wall_for(pending))
                emissions.extend(self.engine.advance_to(pending))
                pending = self._next_due_eval()

        for element in ordered:
            advance_clocked(element.instant - 1)
            self._sleep_until(wall_for(element.instant))
            self.engine.ingest_element(element, stream_name)
        final = until if until is not None else ordered[-1].instant
        advance_clocked(final)
        emissions.extend(self.engine.advance_to(final))
        return emissions

    # -- internals -----------------------------------------------------------

    def _next_due_eval(self) -> Optional[TimeInstant]:
        candidates = [
            registered.next_eval
            for registered in self.engine._queries.values()
            if not registered.done
        ]
        return min(candidates) if candidates else None

    def _sleep_until(self, wall_deadline: float) -> None:
        while True:
            now = self._clock()
            remaining = wall_deadline - now
            if remaining <= 0:
                return
            if self._max_wake_interval is not None:
                remaining = min(remaining, self._max_wake_interval)
            self._sleep(remaining)


class FakeClock:
    """Deterministic clock/sleep pair for testing replay schedules.

    ``sleep`` advances the clock instantly and logs the requested
    durations, so tests can assert the wake schedule without waiting.
    """

    def __init__(self, start: float = 0.0):
        self.now = start
        self.sleeps: List[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds
