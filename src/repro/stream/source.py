"""Stream sources — including the simulated Kafka stand-in.

The paper's deployment feeds rental events through a Kafka topic with
batched 5-minute delivery (Section 2).  We cannot use Kafka offline, so
:class:`SimulatedEventQueue` reproduces the behaviour that matters to the
semantics: events are appended by producers with their occurrence
timestamps, collected into per-period batches, and delivered to consumers
as one property graph per period boundary — exactly the (G, ω) pairs of
Definition 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import StreamError
from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph
from repro.graph.temporal import TimeInstant
from repro.stream.stream import StreamElement


class ListSource:
    """A replayable source over a fixed element list."""

    def __init__(self, elements: Iterable[StreamElement]):
        self._elements = list(elements)

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)


class GeneratorSource:
    """Wraps a generator function producing stream elements on demand.

    The factory is re-invoked per iteration so the source is replayable
    when the underlying generator is deterministic.
    """

    def __init__(self, factory: Callable[[], Iterator[StreamElement]]):
        self._factory = factory

    def __iter__(self) -> Iterator[StreamElement]:
        return self._factory()


@dataclass
class _PendingEvent:
    occurred_at: TimeInstant
    apply: Callable[[GraphBuilder], None]


class SimulatedEventQueue:
    """Kafka-topic stand-in with batched periodic delivery.

    Producers call :meth:`publish` with an occurrence timestamp and a
    callback that adds the event's subgraph to a builder.  Every ``period``
    seconds the queue seals a batch: all events that occurred in
    ``[batch_start, batch_start + period)`` become one property graph whose
    arrival instant is the period's *end* — matching the running example,
    where the 14:40 rental arrives in the 14:45 event.
    """

    def __init__(self, period: int, start: TimeInstant):
        if period <= 0:
            raise StreamError("delivery period must be positive")
        self.period = period
        self.start = start
        self._pending: List[_PendingEvent] = []

    def publish(
        self, occurred_at: TimeInstant, apply: Callable[[GraphBuilder], None]
    ) -> None:
        """Enqueue one event occurring at ``occurred_at``."""
        if occurred_at < self.start:
            raise StreamError(
                f"event at {occurred_at} precedes queue start {self.start}"
            )
        self._pending.append(_PendingEvent(occurred_at=occurred_at, apply=apply))

    def deliver_until(self, until: TimeInstant) -> List[StreamElement]:
        """Seal and return all batches with arrival instant ≤ ``until``.

        Empty periods produce no element (the paper's stations transmit
        only when something happened; an always-on heartbeat variant can
        be had with ``include_empty=True`` on :meth:`deliver_all`).
        """
        return self._deliver(until, include_empty=False)

    def deliver_all(
        self, until: TimeInstant, include_empty: bool = False
    ) -> List[StreamElement]:
        return self._deliver(until, include_empty=include_empty)

    def _deliver(self, until: TimeInstant, include_empty: bool) -> List[StreamElement]:
        batches: Dict[TimeInstant, List[_PendingEvent]] = {}
        kept: List[_PendingEvent] = []
        for event in self._pending:
            offset = event.occurred_at - self.start
            arrival = self.start + (offset // self.period + 1) * self.period
            if arrival <= until:
                batches.setdefault(arrival, []).append(event)
            else:
                kept.append(event)
        self._pending = kept
        elements: List[StreamElement] = []
        arrival = self.start + self.period
        while arrival <= until:
            events = batches.get(arrival, [])
            if events or include_empty:
                builder = GraphBuilder()
                for event in sorted(events, key=lambda item: item.occurred_at):
                    event.apply(builder)
                elements.append(
                    StreamElement(graph=builder.build(), instant=arrival)
                )
            arrival += self.period
        return elements


def constant_rate_source(
    graphs: Iterable[PropertyGraph], start: TimeInstant, period: int
) -> ListSource:
    """Assign arrival instants ``start + i·period`` to a graph sequence."""
    elements = [
        StreamElement(graph=graph, instant=start + index * period)
        for index, graph in enumerate(graphs)
    ]
    return ListSource(elements)
