"""Snapshot graphs (Definition 5.5) and incremental maintenance.

A snapshot graph ``G_τ`` is the union of all graphs in the substream
``S[τ]``.  Two implementations are provided:

* :func:`snapshot_graph` — the literal definition: fold the union.
* :class:`SnapshotMaintainer` — an incremental maintainer that supports
  adding and removing stream elements in O(changed elements) rather than
  recomputing the whole union per evaluation.  Property-based tests assert
  it always agrees with the literal definition.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Set, Tuple

from repro.errors import GraphUnionError
from repro.graph.model import Node, PropertyGraph, Relationship
from repro.graph.union import union_all
from repro.stream.stream import StreamElement


def snapshot_graph(elements: Iterable[StreamElement]) -> PropertyGraph:
    """The literal Definition 5.5: union of all substream graphs."""
    return union_all(element.graph for element in elements)


def _node_contribution(node: Node) -> Tuple:
    return (node.labels, tuple(sorted(node.properties.items())))


def _rel_contribution(rel: Relationship) -> Tuple:
    return (rel.type, rel.src, rel.trg, tuple(sorted(rel.properties.items())))


class SnapshotMaintainer:
    """Incrementally maintained union of a changing set of stream elements.

    Each element contributes a bag of (id → description) facts; the
    current snapshot node/relationship for an id is the UNA-consistent
    combination of all live contributions for that id.  Removing an
    element withdraws its contributions and drops ids whose contribution
    count reaches zero.

    ``graph_cls`` selects the snapshot implementation — the reference
    :class:`~repro.graph.model.PropertyGraph` (default) or any class
    with the same ``of``/``patched``/``empty`` contract, e.g. the
    columnar backend (:class:`~repro.graph.columnar.ColumnarGraph`).
    """

    def __init__(self, graph_cls: type = PropertyGraph):
        self._graph_cls = graph_cls
        self._node_contribs: Dict[int, Counter] = {}
        self._rel_contribs: Dict[int, Counter] = {}
        self._dirty = True
        self._dirty_nodes: Set[int] = set()
        self._dirty_rels: Set[int] = set()
        self._has_cache = False
        self._cached: PropertyGraph = graph_cls.empty()

    # -- mutation ------------------------------------------------------------

    def add(self, element: StreamElement) -> None:
        for node in element.graph.nodes.values():
            self._node_contribs.setdefault(node.id, Counter())[
                _node_contribution(node)
            ] += 1
            self._dirty_nodes.add(node.id)
        for rel in element.graph.relationships.values():
            self._rel_contribs.setdefault(rel.id, Counter())[
                _rel_contribution(rel)
            ] += 1
            self._dirty_rels.add(rel.id)
        self._dirty = True

    def remove(self, element: StreamElement) -> None:
        for node in element.graph.nodes.values():
            contribs = self._node_contribs.get(node.id)
            if not contribs:
                raise GraphUnionError(
                    f"removing element that never contributed node {node.id}"
                )
            key = _node_contribution(node)
            if contribs[key] <= 0:
                raise GraphUnionError(
                    f"removing unknown contribution for node {node.id}"
                )
            contribs[key] -= 1
            if contribs[key] == 0:
                del contribs[key]
            if not contribs:
                del self._node_contribs[node.id]
            self._dirty_nodes.add(node.id)
        for rel in element.graph.relationships.values():
            contribs = self._rel_contribs.get(rel.id)
            if not contribs:
                raise GraphUnionError(
                    f"removing element that never contributed relationship {rel.id}"
                )
            key = _rel_contribution(rel)
            if contribs[key] <= 0:
                raise GraphUnionError(
                    f"removing unknown contribution for relationship {rel.id}"
                )
            contribs[key] -= 1
            if contribs[key] == 0:
                del contribs[key]
            if not contribs:
                del self._rel_contribs[rel.id]
            self._dirty_rels.add(rel.id)
        self._dirty = True

    # -- contribution merging --------------------------------------------------

    def _merge_node(self, node_id: int, contribs: Counter) -> Node:
        labels = None
        properties: Dict = {}
        for (contrib_labels, contrib_props), _count in contribs.items():
            if labels is None:
                labels = contrib_labels
            elif contrib_labels != labels:
                raise GraphUnionError(
                    f"node {node_id} has conflicting labels across the window"
                )
            for key, value in contrib_props:
                if key in properties and properties[key] != value:
                    raise GraphUnionError(
                        f"node {node_id} has conflicting values for "
                        f"property {key!r} across the window"
                    )
                properties[key] = value
        return Node(id=node_id, labels=labels, properties=properties)

    def _merge_rel(self, rel_id: int, contribs: Counter) -> Relationship:
        rel_type = None
        endpoints = None
        properties: Dict = {}
        for (contrib_type, src, trg, contrib_props), _count in contribs.items():
            if rel_type is None:
                rel_type, endpoints = contrib_type, (src, trg)
            elif (contrib_type, (src, trg)) != (rel_type, endpoints):
                raise GraphUnionError(
                    f"relationship {rel_id} has conflicting type/endpoints "
                    "across the window"
                )
            for key, value in contrib_props:
                if key in properties and properties[key] != value:
                    raise GraphUnionError(
                        f"relationship {rel_id} has conflicting values for "
                        f"property {key!r} across the window"
                    )
                properties[key] = value
        return Relationship(
            id=rel_id,
            type=rel_type,
            src=endpoints[0],
            trg=endpoints[1],
            properties=properties,
        )

    # -- snapshot construction -----------------------------------------------

    def graph(self) -> PropertyGraph:
        """The current snapshot graph (cached until the next mutation).

        When a cached snapshot exists, only the entities touched since
        the last build are re-merged and patched in
        (:meth:`~repro.graph.model.PropertyGraph.patched`) — the
        per-evaluation maintenance step is O(delta), not O(window).
        """
        if not self._dirty:
            return self._cached
        touched = len(self._dirty_nodes) + len(self._dirty_rels)
        live = len(self._node_contribs) + len(self._rel_contribs)
        if not self._has_cache or 2 * touched >= live:
            # No base to patch (or most of it changed): build from scratch.
            nodes = [
                self._merge_node(node_id, contribs)
                for node_id, contribs in self._node_contribs.items()
            ]
            relationships = [
                self._merge_rel(rel_id, contribs)
                for rel_id, contribs in self._rel_contribs.items()
            ]
            self._cached = self._graph_cls.of(nodes, relationships)
        else:
            self._cached = self._cached.patched(
                    nodes=[
                        self._merge_node(node_id, self._node_contribs[node_id])
                        for node_id in self._dirty_nodes
                        if node_id in self._node_contribs
                    ],
                    relationships=[
                        self._merge_rel(rel_id, self._rel_contribs[rel_id])
                        for rel_id in self._dirty_rels
                        if rel_id in self._rel_contribs
                    ],
                    removed_nodes=[
                        node_id
                        for node_id in self._dirty_nodes
                        if node_id not in self._node_contribs
                        and node_id in self._cached.nodes
                    ],
                    removed_rels=[
                        rel_id
                        for rel_id in self._dirty_rels
                        if rel_id not in self._rel_contribs
                        and rel_id in self._cached.relationships
                    ],
                )
        self._has_cache = True
        self._dirty = False
        self._dirty_nodes.clear()
        self._dirty_rels.clear()
        return self._cached

    def is_empty(self) -> bool:
        return not self._node_contribs and not self._rel_contribs
