"""Logical sub-stream partitioning (the paper's future-work item ii).

Splits one property graph stream into named logical sub-streams, either
per *element* (routing whole events) or per *content* (splitting each
event graph into sub-graphs by a relationship classifier — nodes follow
the relationships that reference them).

The resulting name→elements mapping feeds
:meth:`repro.seraph.SeraphEngine.run_streams` directly, so a partitioned
stream can be queried with per-partition ``FROM STREAM`` windows.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import PartitionError
from repro.graph.model import PropertyGraph, Relationship
from repro.stream.stream import StreamElement

#: Classifier-error callback: receives the offending element and the
#: wrapping :class:`PartitionError`.  The element is skipped; the
#: callback decides what else happens (dead-letter, log, count).
OnPartitionError = Callable[[StreamElement, PartitionError], None]


def partition_elements(
    elements: Iterable[StreamElement],
    classify: Callable[[StreamElement], str],
    on_error: Optional[OnPartitionError] = None,
) -> Dict[str, List[StreamElement]]:
    """Route whole events into named sub-streams.

    Every element lands in exactly one partition; arrival order (and
    therefore non-decreasing timestamps) is preserved within each.

    A raising classifier no longer aborts the whole run with its raw
    exception: the failure is wrapped in a typed :class:`PartitionError`.
    Without ``on_error`` that error propagates (fail-fast); with it, the
    element is handed to the callback (e.g. a dead-letter queue — see
    :func:`repro.runtime.parallel.dead_letter_partition_handler`) and the
    remaining elements are still routed.
    """
    partitions: Dict[str, List[StreamElement]] = {}
    for element in elements:
        try:
            name = classify(element)
        except Exception as exc:
            error = PartitionError(
                f"partition classifier failed on element at "
                f"{element.instant}: {exc}",
                item=element,
            )
            error.__cause__ = exc
            if on_error is None:
                raise error
            on_error(element, error)
            continue
        partitions.setdefault(name, []).append(element)
    return partitions


def split_element(
    element: StreamElement,
    classify: Callable[[Relationship], Optional[str]],
    keep_isolated_nodes_in: Optional[str] = None,
) -> Dict[str, StreamElement]:
    """Split one event graph into per-partition sub-graphs.

    Each relationship is routed by ``classify`` (returning ``None`` drops
    it); a partition's sub-graph contains the routed relationships plus
    their endpoint nodes.  Nodes not referenced by any routed
    relationship are dropped unless ``keep_isolated_nodes_in`` names the
    partition that should receive them.
    """
    buckets: Dict[str, Dict[str, dict]] = {}
    referenced = set()
    for rel in element.graph.relationships.values():
        try:
            partition = classify(rel)
        except Exception as exc:
            error = PartitionError(
                f"partition classifier failed on relationship {rel.id} "
                f"in element at {element.instant}: {exc}",
                item=element,
            )
            error.__cause__ = exc
            raise error
        if partition is None:
            continue
        bucket = buckets.setdefault(partition, {"nodes": {}, "rels": {}})
        bucket["rels"][rel.id] = rel
        for node_id in (rel.src, rel.trg):
            bucket["nodes"][node_id] = element.graph.node(node_id)
            referenced.add(node_id)
    if keep_isolated_nodes_in is not None:
        bucket = buckets.setdefault(
            keep_isolated_nodes_in, {"nodes": {}, "rels": {}}
        )
        for node_id, node in element.graph.nodes.items():
            if node_id not in referenced:
                bucket["nodes"][node_id] = node
    return {
        partition: StreamElement(
            graph=PropertyGraph.of(
                bucket["nodes"].values(), bucket["rels"].values()
            ),
            instant=element.instant,
        )
        for partition, bucket in buckets.items()
    }


def partition_stream(
    elements: Iterable[StreamElement],
    classify: Callable[[Relationship], Optional[str]],
    keep_isolated_nodes_in: Optional[str] = None,
    include_empty: bool = False,
    partitions: Optional[Iterable[str]] = None,
    on_error: Optional[OnPartitionError] = None,
) -> Dict[str, List[StreamElement]]:
    """Split a whole stream content-wise into named sub-streams.

    By default a partition only receives the events that contributed to
    it.  With ``include_empty=True`` every partition named in
    ``partitions`` (required in that mode) receives one element per
    source event, empty when nothing was routed to it — preserving the
    source's event grid in each sub-stream.  ``on_error`` receives
    elements whose classification raised (wrapped in
    :class:`PartitionError`); those elements are skipped entirely.
    """
    if include_empty and partitions is None:
        raise ValueError(
            "include_empty=True requires the partition names up front"
        )
    out: Dict[str, List[StreamElement]] = {
        name: [] for name in (partitions or ())
    }
    for element in elements:
        try:
            pieces = split_element(element, classify, keep_isolated_nodes_in)
        except PartitionError as error:
            if on_error is None:
                raise
            on_error(element, error)
            continue
        if include_empty:
            for name in out:
                piece = pieces.get(
                    name,
                    StreamElement(graph=PropertyGraph.empty(),
                                  instant=element.instant),
                )
                out[name].append(piece)
        else:
            for name, piece in pieces.items():
                if piece.graph.is_empty():
                    continue
                out.setdefault(name, []).append(piece)
    return out


def by_relationship_type() -> Callable[[Relationship], str]:
    """Classifier: one logical sub-stream per relationship type."""
    return lambda rel: rel.type


def by_property(
    key: str, default: Optional[str] = None
) -> Callable[[Relationship], Optional[str]]:
    """Classifier: route by a relationship property's string value."""

    def classify(rel: Relationship) -> Optional[str]:
        value = rel.property(key)
        if value is None:
            return default
        return str(value)

    return classify
