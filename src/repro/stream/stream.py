"""Property graph streams and substreams (Definitions 5.2, 5.3).

A property graph stream is a sequence of pairs ``(G, ω)`` with
non-decreasing ω.  :class:`PropertyGraphStream` is an *appendable recorded
stream*: the engine ingests elements into it, and substream extraction
(``S[τ]``) serves windowing.  For truly unbounded sources see
:mod:`repro.stream.source`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import OutOfOrderEventError
from repro.graph.model import PropertyGraph
from repro.graph.temporal import TimeInstant
from repro.stream.timeline import TimeInterval


@dataclass(frozen=True, slots=True)
class StreamElement:
    """One stream pair (G, ω).

    ``slots=True``: the engine holds one instance per retained event and
    windows reference them again, so the per-instance dict is measurable
    overhead at stream scale.
    """

    graph: PropertyGraph
    instant: TimeInstant

    def __repr__(self) -> str:
        return f"({self.graph!r} @ {self.instant})"


class PropertyGraphStream:
    """A recorded, appendable property graph stream.

    Elements must arrive with non-decreasing instants (Definition 5.2);
    violations raise :class:`OutOfOrderEventError` unless the stream was
    created with ``allow_out_of_order=True``, in which case elements are
    kept sorted by instant (useful when replaying merged logs).
    """

    def __init__(
        self,
        elements: Iterable[StreamElement] = (),
        allow_out_of_order: bool = False,
    ):
        self._elements: List[StreamElement] = []
        self._instants: List[TimeInstant] = []
        self._allow_out_of_order = allow_out_of_order
        for element in elements:
            self.append(element)

    def append(self, element: StreamElement) -> None:
        """Ingest one element at the head of the stream."""
        if self._instants and element.instant < self._instants[-1]:
            if not self._allow_out_of_order:
                raise OutOfOrderEventError(
                    f"element at {element.instant} arrived after stream head "
                    f"{self._instants[-1]}"
                )
            index = bisect.bisect_right(self._instants, element.instant)
            self._instants.insert(index, element.instant)
            self._elements.insert(index, element)
            return
        self._instants.append(element.instant)
        self._elements.append(element)

    def push(self, graph: PropertyGraph, instant: TimeInstant) -> StreamElement:
        """Convenience: wrap and append."""
        element = StreamElement(graph=graph, instant=instant)
        self.append(element)
        return element

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> StreamElement:
        return self._elements[index]

    @property
    def elements(self) -> Tuple[StreamElement, ...]:
        return tuple(self._elements)

    @property
    def head_instant(self) -> Optional[TimeInstant]:
        """Largest instant seen so far (None for the empty stream)."""
        return self._instants[-1] if self._instants else None

    @property
    def first_instant(self) -> Optional[TimeInstant]:
        return self._instants[0] if self._instants else None

    # -- substreams (Definition 5.3) -------------------------------------------

    def substream(self, interval: TimeInterval) -> List[StreamElement]:
        """S[τ]: the elements with ω ∈ [τ.start, τ.end)."""
        lo = bisect.bisect_left(self._instants, interval.start)
        hi = bisect.bisect_left(self._instants, interval.end)
        return self._elements[lo:hi]

    def substream_closed(
        self, start_exclusive: TimeInstant, end_inclusive: TimeInstant
    ) -> List[StreamElement]:
        """Elements with ω ∈ (start, end] — the TRAILING window membership
        used by the paper's worked example (see DESIGN.md §3)."""
        lo = bisect.bisect_right(self._instants, start_exclusive)
        hi = bisect.bisect_right(self._instants, end_inclusive)
        return self._elements[lo:hi]

    def evict_count(self, count: int) -> List[StreamElement]:
        """Drop (and return) the oldest ``count`` elements."""
        evicted = self._elements[:count]
        del self._elements[:count]
        del self._instants[:count]
        return evicted

    def evict_before(self, instant: TimeInstant) -> List[StreamElement]:
        """Drop (and return) all elements with ω < instant.

        This is how the engine bounds memory: once no registered window can
        reach an element again, it is evicted.
        """
        cut = bisect.bisect_left(self._instants, instant)
        evicted = self._elements[:cut]
        del self._elements[:cut]
        del self._instants[:cut]
        return evicted

    def __repr__(self) -> str:
        if not self._elements:
            return "PropertyGraphStream(empty)"
        return (
            f"PropertyGraphStream({len(self._elements)} elements, "
            f"[{self._instants[0]}..{self._instants[-1]}])"
        )
