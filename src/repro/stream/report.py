"""Result report policies (requirement R3).

Seraph's ``EMIT`` clause controls *what* is part of each emission:

* ``SNAPSHOT`` — every evaluation emits all current result tuples,
  regardless of earlier emissions (Listing 2).
* ``ON ENTERING`` — only tuples that were not part of the previous
  evaluation's result are emitted (Listing 5); realized as the bag
  difference current ∖ previous.
* ``ON EXITING`` — the dual: tuples of the previous evaluation that left
  the result.  Not exercised by the paper's listings but the natural
  completion of the family (CQL's DStream analog); included for the
  language's forward-compatibility and tested.

Policies are stateful per registered query: :class:`ReportState` keeps the
previous evaluation's table.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.graph.table import Table


class ReportPolicy(enum.Enum):
    SNAPSHOT = "SNAPSHOT"
    ON_ENTERING = "ON ENTERING"
    ON_EXITING = "ON EXITING"

    @staticmethod
    def parse(text: str) -> "ReportPolicy":
        cleaned = " ".join(text.upper().split())
        for policy in ReportPolicy:
            if policy.value == cleaned:
                return policy
        raise ValueError(f"unknown report policy {text!r}")


class ReportState:
    """Tracks the previous evaluation's result for one query."""

    def __init__(self, policy: ReportPolicy):
        self.policy = policy
        self._previous: Optional[Table] = None

    def apply(self, current: Table) -> Table:
        """Produce the emission for this evaluation and advance state."""
        previous = self._previous
        self._previous = current
        if self.policy is ReportPolicy.SNAPSHOT:
            return current
        if previous is None:
            previous = Table.empty(current.fields)
        if self.policy is ReportPolicy.ON_ENTERING:
            return current.bag_difference(previous)
        return previous.bag_difference(current)

    def reset(self) -> None:
        self._previous = None
