"""Graph stream substrate: time, streams, snapshots, windows, reports."""

from repro.stream.partition import (
    by_property,
    by_relationship_type,
    partition_elements,
    partition_stream,
    split_element,
)
from repro.stream.advanced_windows import CountWindow, SessionWindow
from repro.stream.replay import FakeClock, ReplayDriver
from repro.stream.report import ReportPolicy, ReportState
from repro.stream.snapshot import SnapshotMaintainer, snapshot_graph
from repro.stream.source import (
    GeneratorSource,
    ListSource,
    SimulatedEventQueue,
    constant_rate_source,
)
from repro.stream.stream import PropertyGraphStream, StreamElement
from repro.stream.timeline import TimeInterval
from repro.stream.tvt import (
    RESERVED_FIELDS,
    WIN_END,
    WIN_START,
    TimeAnnotatedTable,
    TimeVaryingTable,
)
from repro.stream.window import ActiveSubstreamPolicy, WindowConfig

__all__ = [
    "ActiveSubstreamPolicy",
    "CountWindow",
    "FakeClock",
    "ReplayDriver",
    "SessionWindow",
    "GeneratorSource",
    "ListSource",
    "PropertyGraphStream",
    "RESERVED_FIELDS",
    "ReportPolicy",
    "ReportState",
    "SimulatedEventQueue",
    "SnapshotMaintainer",
    "StreamElement",
    "TimeAnnotatedTable",
    "TimeInterval",
    "TimeVaryingTable",
    "WIN_END",
    "WIN_START",
    "WindowConfig",
    "by_property",
    "by_relationship_type",
    "constant_rate_source",
    "partition_elements",
    "partition_stream",
    "snapshot_graph",
    "split_element",
]
