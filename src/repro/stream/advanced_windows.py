"""Advanced window types (Section 6: "advanced windowing" exploration).

Seraph's surface syntax (Figure 6) is time-based only; the paper plans to
explore richer window families from the windowing survey it cites.  This
module provides two of them as API-level operators over recorded streams,
usable with the denotational executor
(:func:`repro.seraph.semantics.execute_body`) or standalone:

* :class:`CountWindow` — the last *n* stream elements at each evaluation
  (count-based sliding window);
* :class:`SessionWindow` — the maximal run of elements ending at the
  evaluation instant in which consecutive arrivals are separated by less
  than a ``gap`` (session window; an idle gap closes the session).

Both expose the same ``active_substream(stream, instant)`` shape as the
time-based :class:`~repro.stream.window.WindowConfig`, so snapshot-graph
construction and query evaluation compose unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import WindowError
from repro.graph.temporal import TimeInstant
from repro.stream.stream import PropertyGraphStream, StreamElement
from repro.stream.timeline import TimeInterval


@dataclass(frozen=True)
class CountWindow:
    """The most recent ``size`` elements with arrival ≤ ω."""

    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise WindowError("count window size must be positive")

    def active_substream(
        self, stream: PropertyGraphStream, instant: TimeInstant
    ) -> List[StreamElement]:
        arrived = [
            element for element in stream.elements
            if element.instant <= instant
        ]
        return arrived[-self.size:]

    def reported_interval(
        self, stream: PropertyGraphStream, instant: TimeInstant
    ) -> TimeInterval:
        """Annotation bounds: from the oldest retained arrival to ω."""
        content = self.active_substream(stream, instant)
        if not content:
            return TimeInterval(instant, instant)
        return TimeInterval(content[0].instant, instant + 1)


@dataclass(frozen=True)
class SessionWindow:
    """The session (gap-delimited run) active at ω.

    An element extends the current session when it arrives strictly less
    than ``gap`` after the previous one; an idle period of ≥ ``gap``
    starts a new session.  At evaluation instant ω the active session is
    the one containing the latest arrival ≤ ω — unless that session has
    already *expired* (ω is ≥ gap past its last arrival), in which case
    the window is empty.
    """

    gap: int

    def __post_init__(self):
        if self.gap <= 0:
            raise WindowError("session gap must be positive")

    def active_substream(
        self, stream: PropertyGraphStream, instant: TimeInstant
    ) -> List[StreamElement]:
        arrived = [
            element for element in stream.elements
            if element.instant <= instant
        ]
        if not arrived:
            return []
        if instant - arrived[-1].instant >= self.gap:
            return []  # the last session already timed out
        session: List[StreamElement] = [arrived[-1]]
        for element in reversed(arrived[:-1]):
            if session[0].instant - element.instant < self.gap:
                session.insert(0, element)
            else:
                break
        return session

    def reported_interval(
        self, stream: PropertyGraphStream, instant: TimeInstant
    ) -> TimeInterval:
        content = self.active_substream(stream, instant)
        if not content:
            return TimeInterval(instant, instant)
        return TimeInterval(content[0].instant, instant + 1)


def sessions_of(
    stream: PropertyGraphStream, gap: int
) -> List[List[StreamElement]]:
    """Split a whole recorded stream into its gap-delimited sessions."""
    if gap <= 0:
        raise WindowError("session gap must be positive")
    sessions: List[List[StreamElement]] = []
    for element in stream.elements:
        if sessions and element.instant - sessions[-1][-1].instant < gap:
            sessions[-1].append(element)
        else:
            sessions.append([element])
    return sessions
