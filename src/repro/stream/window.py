"""Time-based windows, evaluation instants, active substreams
(Definitions 5.9, 5.10, 5.11).

A window configuration is the triple ``(ω₀, α, β)``: first-window start,
window width, and slide.  The window operator identifies the infinite set
``W = { [ω₀ + iβ, ω₀ + iβ + α) : i ∈ ℕ }``; evaluation fires at every
instant of ``ET = { ω : (ω − ω₀) mod β = 0 }``.

DESIGN.md §3 documents an inconsistency between Definition 5.11 and the
paper's own worked example (Tables 5/6); :class:`ActiveSubstreamPolicy`
exposes both readings:

* ``EARLIEST_CONTAINING`` — the formal Definition 5.11: among the windows
  of ``W`` that contain ω (close-open membership), pick the one with the
  earliest opening bound.
* ``TRAILING`` — the worked-example semantics: the active window at ω is
  ``(ω − α, ω]`` over arrival instants, reported as
  ``win_start = ω − α, win_end = ω``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import WindowError
from repro.graph.temporal import TimeInstant, format_duration, parse_duration
from repro.stream.stream import PropertyGraphStream, StreamElement
from repro.stream.timeline import TimeInterval


class ActiveSubstreamPolicy(enum.Enum):
    """How the active substream at an evaluation instant is selected."""

    EARLIEST_CONTAINING = "earliest-containing"
    TRAILING = "trailing"


@dataclass(frozen=True)
class WindowConfig:
    """The triple (ω₀, α, β) of Definition 5.9.

    ``width`` (α) and ``slide`` (β) are second counts; ``start`` is ω₀.
    A *tumbling* (hopping) window is the α = β special case.
    """

    start: TimeInstant
    width: int
    slide: int

    def __post_init__(self):
        if self.width <= 0:
            raise WindowError(f"window width must be positive, got {self.width}")
        if self.slide <= 0:
            raise WindowError(f"window slide must be positive, got {self.slide}")

    @staticmethod
    def of(start: TimeInstant, width: str | int, slide: str | int) -> "WindowConfig":
        """Build from ISO-8601 duration strings or second counts."""
        if isinstance(width, str):
            width = parse_duration(width)
        if isinstance(slide, str):
            slide = parse_duration(slide)
        return WindowConfig(start=start, width=width, slide=slide)

    @property
    def is_tumbling(self) -> bool:
        return self.width == self.slide

    @property
    def is_sliding(self) -> bool:
        return self.slide < self.width

    def window(self, index: int) -> TimeInterval:
        """w_i = [ω₀ + iβ, ω₀ + iβ + α)."""
        if index < 0:
            raise WindowError("window index must be non-negative")
        opening = self.start + index * self.slide
        return TimeInterval(opening, opening + self.width)

    def windows_until(self, limit: TimeInstant) -> Iterator[TimeInterval]:
        """All windows whose opening bound is ≤ limit."""
        index = 0
        while True:
            window = self.window(index)
            if window.start > limit:
                return
            yield window
            index += 1

    def windows_containing(self, instant: TimeInstant) -> List[TimeInterval]:
        """The windows of W(ω₀, α, β) that contain ``instant``.

        Close-open membership, i ∈ ℕ — there are at most ⌈α/β⌉ of them.
        """
        if instant < self.start:
            return []
        # Smallest i with ω₀ + iβ + α > instant, clamped at 0.
        first = max(0, (instant - self.start - self.width) // self.slide + 1)
        windows = []
        index = first
        while True:
            window = self.window(index)
            if window.start > instant:
                break
            if instant in window:
                windows.append(window)
            index += 1
        return windows

    # -- evaluation instants (Definition 5.10) --------------------------------

    def evaluation_instants(
        self, until: TimeInstant, from_instant: Optional[TimeInstant] = None
    ) -> Iterator[TimeInstant]:
        """ET ∩ [from_instant, until]: instants ω ≥ ω₀ with (ω−ω₀) mod β = 0."""
        current = self.start
        if from_instant is not None and from_instant > current:
            steps = (from_instant - self.start + self.slide - 1) // self.slide
            current = self.start + steps * self.slide
        while current <= until:
            yield current
            current += self.slide

    def is_evaluation_instant(self, instant: TimeInstant) -> bool:
        return instant >= self.start and (instant - self.start) % self.slide == 0

    def next_evaluation_at_or_after(self, instant: TimeInstant) -> TimeInstant:
        if instant <= self.start:
            return self.start
        steps = (instant - self.start + self.slide - 1) // self.slide
        return self.start + steps * self.slide

    # -- active windows/substreams (Definition 5.11 + TRAILING) ----------------

    def active_window(
        self,
        instant: TimeInstant,
        policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
    ) -> Optional[TimeInterval]:
        """The reported window bounds for an evaluation at ``instant``.

        Under TRAILING this is ``[instant − α, instant)`` — the bounds the
        paper's Tables 5/6 print; membership of events is (start, end],
        see :meth:`active_substream`.  Under EARLIEST_CONTAINING it is the
        Definition 5.11 window, or None when no window contains the
        instant (i.e. instant < ω₀).
        """
        if policy is ActiveSubstreamPolicy.TRAILING:
            return TimeInterval(instant - self.width, instant)
        candidates = self.windows_containing(instant)
        if not candidates:
            return None
        return min(candidates, key=lambda window: window.start)

    def active_substream(
        self,
        stream: PropertyGraphStream,
        instant: TimeInstant,
        policy: ActiveSubstreamPolicy = ActiveSubstreamPolicy.TRAILING,
    ) -> List[StreamElement]:
        """The stream elements feeding the evaluation at ``instant``.

        Under EARLIEST_CONTAINING the window may extend past ω (windows
        are close-open intervals *containing* the evaluation instant);
        only elements that have actually arrived (instant' ≤ ω) can feed
        the evaluation, so the window is clipped at ω.
        """
        if policy is ActiveSubstreamPolicy.TRAILING:
            return stream.substream_closed(instant - self.width, instant)
        window = self.active_window(instant, policy)
        if window is None:
            return []
        return stream.substream(TimeInterval(window.start, instant + 1))

    def eviction_horizon(self, instant: TimeInstant) -> TimeInstant:
        """Earliest arrival instant any evaluation at ≥ instant can still
        reach; elements before it are safe to evict under both policies."""
        return instant - self.width

    def __repr__(self) -> str:
        return (
            f"WindowConfig(start={self.start}, "
            f"width={format_duration(self.width)}, "
            f"slide={format_duration(self.slide)})"
        )
