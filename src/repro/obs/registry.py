"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every named instrument of an observed
engine, namespaced with dots (``engine.ingested``,
``query.<name>.stage.match_full``, ``resilience.reorder.default.pending``).
The layer-specific counter objects that predate this registry
(:class:`~repro.metrics.ResilienceMetrics`,
:class:`~repro.metrics.ParallelMetrics`, :class:`~repro.metrics.RunReport`)
are absorbed into it by :meth:`MetricsRegistry.absorb`, which flattens
their dictionaries under a namespace — the unified status schema
(:mod:`repro.obs.schema`) is built that way.

Histograms keep a fixed-size **ring-buffer reservoir** (latest N
observations) next to exact count/sum/min/max, so percentile queries
(p50/p95/p99) stay O(reservoir) regardless of run length.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import MetricsError


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """Last-written point-in-time value."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution with a ring-buffer reservoir.

    ``count``/``total``/``min``/``max`` are exact over every observation;
    percentiles are computed over the newest ``reservoir`` observations
    (nearest-rank, the same rule :class:`repro.metrics.RunReport` uses).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_ring", "_next")
    kind = "histogram"

    def __init__(self, name: str, reservoir: int = 512):
        if reservoir < 1:
            raise MetricsError("histogram reservoir must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._ring: list = [0.0] * reservoir
        self._next = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._ring[self._next % len(self._ring)] = value
        self._next += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> list:
        """The retained reservoir (newest ``len(ring)`` observations)."""
        filled = min(self.count, len(self._ring))
        return self._ring[:filled]

    def percentile(self, percentile: float) -> float:
        """Nearest-rank percentile over the reservoir (0 < p ≤ 1).

        Returns 0.0 when nothing was observed; raises
        :class:`~repro.errors.MetricsError` on an out-of-range p.
        """
        if not 0.0 < percentile <= 1.0:
            raise MetricsError(
                f"percentile must be in (0, 1], got {percentile!r}"
            )
        ordered = sorted(self.samples())
        if not ordered:
            return 0.0
        rank = max(0, int(percentile * len(ordered) + 0.999999) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Re-requesting a name always returns the same instrument; requesting
    it as a different kind raises :class:`~repro.errors.MetricsError`.
    """

    def __init__(self, reservoir: int = 512):
        self.reservoir = reservoir
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise MetricsError(
                f"metric {name!r} is a {instrument.kind}, not a {kind}"
            )
        return instrument

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(
            name, lambda n: Histogram(n, reservoir=self.reservoir),
            "histogram",
        )

    def get(self, name: str) -> Optional[Any]:
        """The instrument under ``name``, or None."""
        return self._instruments.get(name)

    # -- write shorthands -------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def absorb(self, namespace: str, fields: Mapping[str, Any]) -> None:
        """Flatten a (possibly nested) counter dict into namespaced gauges.

        This is how the pre-existing layer metrics objects
        (``ResilienceMetrics.as_dict()``, ``ParallelMetrics.as_dict()``,
        ``RunReport.as_dict()``) surface through the registry without
        changing their own bookkeeping.  Non-numeric leaves are skipped.
        """
        for key, value in fields.items():
            name = f"{namespace}.{key}"
            if isinstance(value, Mapping):
                self.absorb(name, value)
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            else:
                self.gauge(name).set(value)

    # -- read -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: ``{"counters", "gauges", "histograms"}``."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.kind == "counter":
                counters[name] = instrument.value
            elif instrument.kind == "gauge":
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
