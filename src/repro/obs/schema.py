"""The unified, versioned status/metrics schema — and its validator.

Before this layer existed the repo had three unrelated answers to "what
is the engine doing": ``SeraphEngine.status()``,
``ResilienceMetrics.as_dict()`` and ``ParallelMetrics.as_dict()`` (plus
``RunReport`` for instrumented runs).  :func:`unified_status` merges all
of them under one namespaced document with a stable, documented contract
(docs/OBSERVABILITY.md):

``schema``
    ``{"name": "repro.status", "version": 1}`` — bump the version on
    any breaking key change.
``engine.*``
    The core engine surface: per-query counters, per-stream retention,
    watermark, and the optimization toggles.
``parallel.*``
    ``None`` on a serial engine; otherwise the
    :class:`~repro.metrics.ParallelMetrics` counters plus ``workers``.
``supervision.*``
    ``None`` on a serial engine; otherwise the pool supervisor's
    document (mode, crash budget, rebuild/retry/degradation counters,
    chaos tallies — see
    :meth:`~repro.runtime.supervisor.PoolSupervisor.as_dict`).
``resilience.*``
    ``None`` outside a :class:`~repro.runtime.ResilientEngine`;
    otherwise the runtime policies, buffer depths, dead-letter count,
    and the :class:`~repro.metrics.ResilienceMetrics` counters.
``service.*``
    Absent on offline documents; injected per tenant by the
    continuous-query service (quotas, admission, counters, per-query
    emission-log offsets — docs/SERVICE.md).
``obs.*``
    Whether observability is on, the registry snapshot
    (counters/gauges/histograms), and trace span counts.

The legacy ``status()`` methods remain for compatibility; they are
views over the same state.

Run ``python -m repro.obs.schema FILE...`` to validate exported JSON
documents (status/metrics/trace are auto-detected) — the CI pipeline
does exactly that against the CLI's ``--metrics-out``/``--trace-out``
artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ObservabilityError

SCHEMA_VERSION = 1
STATUS_SCHEMA = "repro.status"
METRICS_SCHEMA = "repro.metrics"
TRACE_SCHEMA = "repro.trace"


def _schema_stamp(name: str) -> Dict[str, Any]:
    return {"name": name, "version": SCHEMA_VERSION}


# -- document construction ----------------------------------------------------

def unified_status(engine) -> Dict[str, Any]:
    """One namespaced status document for any engine composition.

    Accepts a :class:`~repro.seraph.engine.SeraphEngine`, a
    :class:`~repro.runtime.parallel.ParallelEngine`, or a
    :class:`~repro.runtime.ResilientEngine` wrapping either.
    """
    wrapper = None
    inner = engine
    if hasattr(engine, "dead_letters") and hasattr(engine, "engine"):
        wrapper = engine
        inner = engine.engine
    base = dict(inner.status())
    parallel = base.pop("parallel", None)
    supervision = base.pop("supervision", None)
    base.pop("resilience", None)  # wrapper state is rebuilt below
    resilience: Optional[Dict[str, Any]] = None
    if wrapper is not None:
        resilience = {
            "allowed_lateness": wrapper.allowed_lateness,
            "poison_policy": wrapper.poison_policy.value,
            "late_policy": wrapper.late_policy.value,
            "sink_policy": wrapper.sink_policy.value,
            "buffered": {name: len(buffer)
                         for name, buffer in wrapper._buffers.items()},
            "dead_letters": len(wrapper.dead_letters),
            "metrics": wrapper.metrics.as_dict(),
        }
    obs = getattr(inner, "obs", None)
    obs_section: Dict[str, Any] = {"enabled": False,
                                   "metrics": None, "trace": None}
    if obs is not None and obs.enabled:
        obs_section = {
            "enabled": True,
            "metrics": obs.registry.snapshot(),
            "trace": {
                "spans": obs.tracer.created,
                "dropped": obs.tracer.dropped,
            },
        }
    return {
        "schema": _schema_stamp(STATUS_SCHEMA),
        "engine": base,
        "parallel": parallel,
        "supervision": supervision,
        "resilience": resilience,
        "obs": obs_section,
    }


# -- validation ---------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ObservabilityError(message)


def _check_schema_stamp(document: Mapping[str, Any], name: str) -> None:
    _require(isinstance(document, Mapping), "document is not an object")
    stamp = document.get("schema")
    _require(isinstance(stamp, Mapping), "missing 'schema' stamp")
    _require(stamp.get("name") == name,
             f"schema name {stamp.get('name')!r} != {name!r}")
    _require(stamp.get("version") == SCHEMA_VERSION,
             f"unsupported schema version {stamp.get('version')!r}")


def _check_metrics_snapshot(snapshot: Mapping[str, Any]) -> None:
    for section in ("counters", "gauges", "histograms"):
        _require(isinstance(snapshot.get(section), Mapping),
                 f"metrics snapshot misses {section!r}")
    for name, value in snapshot["counters"].items():
        _require(isinstance(value, int) and not isinstance(value, bool),
                 f"counter {name!r} is not an integer")
    for name, value in snapshot["gauges"].items():
        _require(isinstance(value, (int, float))
                 and not isinstance(value, bool),
                 f"gauge {name!r} is not numeric")
    for name, hist in snapshot["histograms"].items():
        _require(isinstance(hist, Mapping),
                 f"histogram {name!r} is not an object")
        for key in ("count", "sum", "min", "max", "mean",
                    "p50", "p95", "p99"):
            _require(isinstance(hist.get(key), (int, float))
                     and not isinstance(hist.get(key), bool),
                     f"histogram {name!r} misses numeric {key!r}")


def validate_status(document: Mapping[str, Any]) -> None:
    """Structural validation of a :func:`unified_status` document."""
    _check_schema_stamp(document, STATUS_SCHEMA)
    engine = document.get("engine")
    _require(isinstance(engine, Mapping), "missing 'engine' section")
    _require(isinstance(engine.get("queries"), Mapping),
             "engine.queries is not an object")
    _require(isinstance(engine.get("streams"), Mapping),
             "engine.streams is not an object")
    for name, info in engine["queries"].items():
        for key in ("evaluations", "reused", "delta", "done"):
            _require(key in info, f"query {name!r} misses {key!r}")
    # 'dataflow' arrived with EMIT ... INTO chaining: validate it when
    # present, tolerate its absence on documents written before it.
    dataflow = engine.get("dataflow")
    if dataflow is not None:
        for key in ("streams", "order", "stages", "edges"):
            _require(key in dataflow, f"engine.dataflow misses {key!r}")
        _require(isinstance(dataflow["streams"], Mapping),
                 "engine.dataflow.streams is not an object")
        for name, info in dataflow["streams"].items():
            for key in ("producers", "consumers", "cursor"):
                _require(key in info,
                         f"dataflow stream {name!r} misses {key!r}")
        _require(isinstance(dataflow["edges"], list),
                 "engine.dataflow.edges is not a list")
    _require("parallel" in document, "missing 'parallel' section")
    _require("resilience" in document, "missing 'resilience' section")
    # 'supervision' arrived after v1 documents were already in the wild:
    # validate it when present, tolerate its absence.
    supervision = document.get("supervision")
    if supervision is not None:
        for key in ("mode", "workers", "crash_budget", "restarts_used",
                    "pool_rebuilds", "task_retries"):
            _require(key in supervision, f"supervision misses {key!r}")
        _require(supervision["mode"] in ("pooled", "degraded"),
                 f"unknown supervision mode {supervision['mode']!r}")
    resilience = document["resilience"]
    if resilience is not None:
        for key in ("allowed_lateness", "poison_policy", "late_policy",
                    "sink_policy", "dead_letters", "metrics"):
            _require(key in resilience, f"resilience misses {key!r}")
    # 'service' is injected by the per-tenant service layer
    # (TenantState.status()); validate it when present, tolerate its
    # absence on offline documents.
    service = document.get("service")
    if service is not None:
        for key in ("tenant", "quarantined", "quotas", "admission",
                    "metrics", "queries"):
            _require(key in service, f"service misses {key!r}")
        _require(isinstance(service["queries"], Mapping),
                 "service.queries is not an object")
        for name, info in service["queries"].items():
            for key in ("buffered", "next_event_id", "evicted"):
                _require(key in info,
                         f"service query {name!r} misses {key!r}")
    obs = document.get("obs")
    _require(isinstance(obs, Mapping) and "enabled" in obs,
             "missing 'obs' section")
    if obs.get("enabled"):
        _require(isinstance(obs.get("metrics"), Mapping),
                 "obs.metrics missing on an enabled document")
        _check_metrics_snapshot(obs["metrics"])
        trace = obs.get("trace")
        _require(isinstance(trace, Mapping) and "spans" in trace,
                 "obs.trace missing on an enabled document")


def validate_metrics(document: Mapping[str, Any]) -> None:
    """Validation of a metrics-export document
    (:func:`repro.obs.export.metrics_document`)."""
    _check_schema_stamp(document, METRICS_SCHEMA)
    _check_metrics_snapshot(document)


def _check_span(span: Mapping[str, Any], path: str) -> None:
    _require(isinstance(span, Mapping), f"span {path} is not an object")
    _require(isinstance(span.get("name"), str),
             f"span {path} misses a name")
    for key in ("start", "duration"):
        value = span.get(key)
        _require(isinstance(value, (int, float))
                 and not isinstance(value, bool),
                 f"span {path} misses numeric {key!r}")
    _require(span.get("duration") >= 0, f"span {path} duration is negative")
    _require(isinstance(span.get("tags"), Mapping),
             f"span {path} misses tags")
    children = span.get("children")
    _require(isinstance(children, list), f"span {path} misses children")
    for index, child in enumerate(children):
        _check_span(child, f"{path}.{index}")


def validate_trace(document: Mapping[str, Any]) -> None:
    """Validation of a trace-export document
    (:func:`repro.obs.export.trace_document`)."""
    _check_schema_stamp(document, TRACE_SCHEMA)
    for key in ("span_count", "dropped"):
        _require(isinstance(document.get(key), int),
                 f"trace document misses integer {key!r}")
    spans = document.get("spans")
    _require(isinstance(spans, list), "trace document misses 'spans'")
    for index, span in enumerate(spans):
        _check_span(span, str(index))


_VALIDATORS = {
    STATUS_SCHEMA: validate_status,
    METRICS_SCHEMA: validate_metrics,
    TRACE_SCHEMA: validate_trace,
}


def validate_document(document: Mapping[str, Any]) -> str:
    """Validate any exported document; returns its schema name."""
    _require(isinstance(document, Mapping), "document is not an object")
    stamp = document.get("schema")
    _require(isinstance(stamp, Mapping) and "name" in stamp,
             "missing 'schema' stamp")
    name = stamp["name"]
    validator = _VALIDATORS.get(name)
    _require(validator is not None, f"unknown schema {name!r}")
    validator(document)
    return name


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.schema FILE...`` — validate exported JSON."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.obs.schema",
        description="Validate exported observability JSON documents.",
    )
    parser.add_argument("paths", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)
    failed = 0
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            name = validate_document(document)
        except (OSError, json.JSONDecodeError, ObservabilityError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failed += 1
        else:
            print(f"OK {path} ({name} v{SCHEMA_VERSION})")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
