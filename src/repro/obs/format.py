"""The one human-readable formatter for every metrics surface.

``ResilienceMetrics.render()``, ``ParallelMetrics.render()``,
``RunReport.render()``, the registry's ``render()`` exporter, and the
unified status renderer all delegate here, so counter formatting
(``name=value`` pairs, millisecond latencies, percentages) is decided in
exactly one place.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping


def format_value(value: Any) -> str:
    """Compact scalar formatting: trimmed floats, plain ints/strings."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_counters(namespace: str, fields: Mapping[str, Any],
                    empty: str = "no data") -> str:
    """One-line ``namespace: k=v, k=v`` summary (nested dicts flatten)."""
    flat: Dict[str, Any] = {}

    def _flatten(prefix: str, mapping: Mapping[str, Any]) -> None:
        for key, value in mapping.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, Mapping):
                _flatten(name, value)
            else:
                flat[name] = value

    _flatten("", fields)
    if not flat:
        return f"{namespace}: {empty}"
    return f"{namespace}: " + ", ".join(
        f"{name}={format_value(value)}" for name, value in flat.items()
    )


def render_run_report(evaluations: int, ingested_elements: int,
                      wall_seconds: float, mean_latency: float,
                      p95_latency: float, total_rows: int,
                      reuse_ratio: float, delta_ratio: float) -> str:
    """The instrumented-run paragraph (``RunReport.render``)."""
    return (
        f"{evaluations} evaluations over "
        f"{ingested_elements} events in {wall_seconds:.3f}s; "
        f"mean latency {mean_latency * 1000:.2f}ms, "
        f"p95 {p95_latency * 1000:.2f}ms; "
        f"{total_rows} rows emitted; "
        f"reuse ratio {reuse_ratio:.0%}; "
        f"delta ratio {delta_ratio:.0%}"
    )


def render_histogram(name: str, snapshot: Mapping[str, Any]) -> str:
    """One-line latency histogram summary (seconds → milliseconds)."""
    return (
        f"{name}: n={snapshot['count']} "
        f"mean={snapshot['mean'] * 1000:.3f}ms "
        f"p50={snapshot['p50'] * 1000:.3f}ms "
        f"p95={snapshot['p95'] * 1000:.3f}ms "
        f"max={snapshot['max'] * 1000:.3f}ms"
    )


def render_registry(snapshot: Mapping[str, Any]) -> str:
    """Multi-line dump of a :meth:`MetricsRegistry.snapshot` document."""
    lines: List[str] = []
    if snapshot.get("counters"):
        lines.append(render_counters("counters", snapshot["counters"]))
    if snapshot.get("gauges"):
        lines.append(render_counters("gauges", snapshot["gauges"]))
    for name, hist in (snapshot.get("histograms") or {}).items():
        lines.append("  " + render_histogram(name, hist))
    return "\n".join(lines) if lines else "metrics: no data"


def render_status(status: Mapping[str, Any]) -> str:
    """Human summary of a unified status document
    (:func:`repro.obs.schema.unified_status`)."""
    lines: List[str] = []
    engine = status.get("engine", {})
    queries = engine.get("queries", {})
    lines.append(
        render_counters(
            "engine",
            {
                "queries": len(queries),
                "watermark": engine.get("watermark"),
                "policy": engine.get("policy"),
                "delta_eval": engine.get("delta_eval"),
            },
        )
    )
    for name, info in queries.items():
        lines.append(
            "  " + render_counters(
                f"query.{name}",
                {
                    key: info[key]
                    for key in (
                        "evaluations", "reused", "delta", "done",
                    )
                    if key in info
                },
            )
        )
    for section in ("parallel", "resilience"):
        fields = status.get(section)
        if fields:
            lines.append(render_counters(section, fields))
    obs = status.get("obs") or {}
    if obs.get("enabled"):
        trace = obs.get("trace") or {}
        lines.append(
            render_counters(
                "obs",
                {"spans": trace.get("spans", 0),
                 "dropped": trace.get("dropped", 0)},
            )
        )
        metrics = obs.get("metrics") or {}
        for name, hist in (metrics.get("histograms") or {}).items():
            lines.append("  " + render_histogram(name, hist))
    return "\n".join(lines)
