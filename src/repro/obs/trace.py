"""Per-evaluation trace spans with nested timing.

A :class:`Span` is one timed operation (an evaluation, a window advance,
a sink delivery attempt); spans nest into a tree, and one engine run
produces a forest of root spans (``ingest`` and ``evaluate`` roots).

Two parenting modes coexist, because the engine's evaluation pipeline is
split across methods while sink/retry instrumentation is lexically
nested:

* **explicit** — :meth:`Tracer.start` opens a span under a given parent
  (or as a root) without touching any ambient state; the caller closes
  it with :meth:`Span.finish`.  The engine keeps the per-evaluation root
  span on its pending-evaluation record this way, which is what lets the
  parallel engine open many evaluation roots concurrently without them
  nesting into each other.
* **ambient** — :meth:`Tracer.span` returns a context manager that
  parents under the innermost open ``span()`` block (or the explicit
  ``parent=`` argument) and closes on exit.  Retry spans created deep
  inside a :class:`~repro.runtime.resilient_sink.ResilientSink` land
  under the engine's ``sink`` span this way.

Worker processes cannot share a tracer; they return *span fragments*
(start offset + duration) that the parent stitches into the trace with
:meth:`Tracer.add_completed` (see ``repro.runtime.parallel``).

The disabled path is :data:`NOOP_TRACER`: every call returns the shared
:data:`NOOP_SPAN` singleton and records nothing, so instrumented code
guarded by a single ``if obs.enabled`` branch costs one attribute read.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

_AMBIENT = object()  # sentinel: parent under the innermost open span()


class Span:
    """One timed operation; a node of the trace tree."""

    __slots__ = ("name", "tags", "start", "end", "children", "_tracer")

    def __init__(self, name: str, tags: Dict[str, Any], start: float,
                 tracer: "Tracer"):
        self.name = name
        self.tags = tags
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    def annotate(self, **tags: Any) -> "Span":
        """Attach key/value tags to the span (chains)."""
        self.tags.update(tags)
        return self

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else self._tracer._clock()
        return end - self.start

    def finish(self) -> "Span":
        """Close an explicitly started span (idempotent)."""
        if self.end is None:
            self.end = self._tracer._clock()
        return self

    # -- ambient context-manager protocol ---------------------------------

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unwind past mismatched exits
            while stack and stack.pop() is not self:
                pass
        self.finish()

    def to_dict(self, epoch: float) -> Dict[str, Any]:
        """JSON-safe form; times are seconds relative to tracer creation."""
        return {
            "name": self.name,
            "start": round(self.start - epoch, 9),
            "duration": round(self.duration_seconds, 9),
            "tags": dict(self.tags),
            "children": [child.to_dict(epoch) for child in self.children],
        }

    def find(self, name: str) -> List["Span"]:
        """All descendants (incl. self) with the given name, pre-order."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration_seconds:.6f}s"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NoopSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()
    children: tuple = ()
    tags: dict = {}
    name = "noop"
    duration_seconds = 0.0

    def annotate(self, **tags: Any) -> "_NoopSpan":
        return self

    def finish(self) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Builds the span forest of one observed run.

    ``limit`` bounds memory on long runs: past it, new spans become the
    no-op singleton and are counted in :attr:`dropped` instead of
    recorded (the trace document reports both numbers).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, limit: int = 100_000):
        self._clock = clock
        self.limit = limit
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._epoch = clock()
        self.created = 0
        self.dropped = 0

    # -- span creation ----------------------------------------------------

    def _make(self, name: str, parent: Optional[Span],
              tags: Dict[str, Any]) -> Span:
        if self.created >= self.limit:
            self.dropped += 1
            return NOOP_SPAN  # type: ignore[return-value]
        self.created += 1
        span = Span(name, tags, self._clock(), self)
        if parent is None or isinstance(parent, _NoopSpan):
            self.roots.append(span)
        else:
            parent.children.append(span)
        return span

    def start(self, name: str, parent: Optional[Span] = None,
              **tags: Any) -> Span:
        """Open a span with explicit parenting (``None`` → root).

        Does not touch the ambient stack; close it with
        :meth:`Span.finish`.
        """
        return self._make(name, parent, tags)

    def span(self, name: str, parent: Any = _AMBIENT, **tags: Any) -> Span:
        """Open a context-manager span (default parent: innermost open
        ``span()`` block)."""
        if parent is _AMBIENT:
            parent = self._stack[-1] if self._stack else None
        return self._make(name, parent, tags)

    def add_completed(self, name: str, duration: float,
                      parent: Optional[Span] = None,
                      start_offset: float = 0.0, **tags: Any) -> Span:
        """Record an already-measured span (e.g. a worker fragment).

        ``start_offset`` places the child relative to its parent's start
        (or the tracer epoch for roots), preserving worker-side ordering
        in the stitched trace.
        """
        span = self._make(name, parent, tags)
        if isinstance(span, _NoopSpan):
            return span
        base = parent.start if isinstance(parent, Span) else self._epoch
        span.start = base + start_offset
        span.end = span.start + duration
        return span

    # -- introspection ----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict(self._epoch) for span in self.roots]

    def find(self, name: str) -> List[Span]:
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def reset(self) -> None:
        """Drop every recorded span (counters restart too)."""
        self.roots = []
        self._stack = []
        self.created = 0
        self.dropped = 0
        self._epoch = self._clock()


class NoopTracer(Tracer):
    """The disabled tracer: stateless, returns :data:`NOOP_SPAN`."""

    enabled = False
    roots: tuple = ()  # type: ignore[assignment]
    created = 0
    dropped = 0

    def __init__(self):  # no state at all
        self._clock = time.perf_counter
        self._stack = []
        self._epoch = 0.0
        self.limit = 0

    def start(self, name: str, parent: Optional[Span] = None,
              **tags: Any) -> Span:
        return NOOP_SPAN  # type: ignore[return-value]

    def span(self, name: str, parent: Any = _AMBIENT, **tags: Any) -> Span:
        return NOOP_SPAN  # type: ignore[return-value]

    def add_completed(self, name: str, duration: float,
                      parent: Optional[Span] = None,
                      start_offset: float = 0.0, **tags: Any) -> Span:
        return NOOP_SPAN  # type: ignore[return-value]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def reset(self) -> None:
        return None


NOOP_TRACER = NoopTracer()
