"""Unified observability: tracing + metrics registry for every layer.

The engine stack (core :class:`~repro.seraph.engine.SeraphEngine`, the
delta path, :class:`~repro.runtime.parallel.ParallelEngine`,
:class:`~repro.runtime.ResilientEngine`) shares one
:class:`Observability` bundle — a :class:`~repro.obs.trace.Tracer` plus
a :class:`~repro.obs.registry.MetricsRegistry` — threaded through
construction (``build_engine(EngineConfig(observability=True))``).

One evaluation produces one ``evaluate`` root span with the stage
children::

    evaluate(query, instant)
      ├─ window_advance
      ├─ snapshot_build          (per window, inside the match stage)
      ├─ reuse | match_delta | match_full | worker_evaluate
      ├─ report
      ├─ sink
      │   └─ sink_attempt*       (retries, from ResilientSink)
      └─ materialize             (``EMIT ... INTO`` producers only)

``ingest`` spans are separate roots.  Pool workers return span
fragments that the parent stitches in as ``worker_evaluate`` children
(:mod:`repro.runtime.parallel`), so one trace covers both sides of the
process boundary.  Stage durations also feed per-query histograms in
the registry under :func:`stage_metric` names — that is what ``EXPLAIN
ANALYZE`` (:func:`repro.seraph.explain.explain_analyze`) reads.

When observability is off (the default), every instrumented site is
guarded by a single ``if obs.enabled:`` branch and the shared
:data:`NOOP_OBS` bundle records nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
)

#: Stage names in pipeline order (trace span names == stage names).
STAGES = (
    "window_advance",
    "snapshot_build",
    "plan_compile",
    "vectorize",
    "reuse",
    "match_delta",
    "match_full",
    "worker_evaluate",
    "report",
    "sink",
    "materialize",
    "total",
)


def stage_metric(query_name: str, stage: str) -> str:
    """Registry histogram name of one query's stage timings (seconds)."""
    return f"query.{query_name}.stage.{stage}"


@dataclass
class Observability:
    """The bundle every engine layer carries: tracer + registry."""

    tracer: Tracer
    registry: MetricsRegistry
    enabled: bool = True

    @classmethod
    def create(cls, span_limit: int = 100_000,
               reservoir: int = 512) -> "Observability":
        return cls(
            tracer=Tracer(limit=span_limit),
            registry=MetricsRegistry(reservoir=reservoir),
            enabled=True,
        )

    def record_stage(self, query_name: str, stage: str,
                     seconds: float) -> None:
        self.registry.observe(stage_metric(query_name, stage), seconds)


#: The disabled bundle (shared; never written to).
NOOP_OBS = Observability(
    tracer=NOOP_TRACER, registry=MetricsRegistry(), enabled=False
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_OBS",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "Observability",
    "STAGES",
    "Span",
    "Tracer",
    "stage_metric",
]
