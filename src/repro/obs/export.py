"""Exporters: JSON documents, Prometheus text format, human render.

Three schema-stamped JSON documents exist (all validated by
:mod:`repro.obs.schema`, including from the command line):

* the **unified status** document — :func:`repro.obs.schema.unified_status`;
* the **metrics** document — :func:`metrics_document` over a registry;
* the **trace** document — :func:`trace_document` over a tracer.

:func:`to_prometheus` renders a registry in the Prometheus text
exposition format (counters/gauges as-is, histograms as summaries with
p50/p95/p99 quantiles); :func:`parse_prometheus` parses that text back
into sample values, which is how the round-trip tests close the loop.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Mapping

from repro.obs import format as obs_format
from repro.obs.registry import MetricsRegistry
from repro.obs.schema import (
    METRICS_SCHEMA,
    SCHEMA_VERSION,
    TRACE_SCHEMA,
)
from repro.obs.trace import Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)


def metrics_document(registry: MetricsRegistry) -> Dict[str, Any]:
    """Schema-stamped JSON-safe dump of a registry."""
    document: Dict[str, Any] = {
        "schema": {"name": METRICS_SCHEMA, "version": SCHEMA_VERSION},
    }
    document.update(registry.snapshot())
    return document


def trace_document(tracer: Tracer) -> Dict[str, Any]:
    """Schema-stamped JSON-safe dump of a tracer's span forest."""
    return {
        "schema": {"name": TRACE_SCHEMA, "version": SCHEMA_VERSION},
        "span_count": tracer.created,
        "dropped": tracer.dropped,
        "spans": tracer.to_dicts(),
    }


def write_json(path: str, document: Mapping[str, Any]) -> str:
    """Write any exported document as pretty, sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# -- Prometheus text format ---------------------------------------------------

def sanitize_metric_name(name: str) -> str:
    """Dots and other separators become underscores (Prometheus rules)."""
    return _NAME_RE.sub("_", name)


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format."""
    snapshot = registry.snapshot()
    lines = []
    for name, value in snapshot["counters"].items():
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot["gauges"].items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_sample(value)}")
    for name, hist in snapshot["histograms"].items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_sample(hist[key])}"
            )
        lines.append(f"{metric}_sum {_format_sample(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def _format_sample(value: float) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse Prometheus exposition text back into sample values.

    Returns ``{metric_name: {label_string: value}}`` with ``""`` as the
    label string for unlabelled samples — enough to assert a round-trip.
    """
    samples: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        value = float(match.group("value"))
        samples.setdefault(match.group("name"), {})[
            match.group("labels") or ""
        ] = value
    return samples


def write_prometheus(path: str, registry: MetricsRegistry,
                     prefix: str = "repro") -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(registry, prefix=prefix))
    return path


def render(registry: MetricsRegistry) -> str:
    """Human-readable multi-line dump (delegates to the one formatter)."""
    return obs_format.render_registry(registry.snapshot())
