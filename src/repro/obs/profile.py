"""cProfile hook around engine evaluation (the CLI's ``--profile``)."""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import IO, Iterator, Optional


@contextmanager
def profiled(path: Optional[str] = None, out: Optional[IO[str]] = None,
             top: int = 20, sort: str = "cumulative") -> Iterator[cProfile.Profile]:
    """Profile the enclosed block.

    ``path`` dumps binary pstats data (inspect with ``python -m pstats``
    or snakeviz); ``out`` prints the ``top`` functions by ``sort`` order
    to a text stream.  Either may be omitted.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        if path is not None:
            profiler.dump_stats(path)
        if out is not None:
            stats = pstats.Stats(profiler, stream=out)
            stats.sort_stats(sort)
            stats.print_stats(top)
