"""Time instants and ISO-8601 parsing (Definition 5.1 support).

The paper treats time as a discrete infinite sequence of instants with a
constant unit.  We realize instants as **integer seconds** since the Unix
epoch (`TimeInstant = int`), which makes window arithmetic exact and keeps
the timeline totally ordered.  ISO-8601 datetimes (``2022-10-14T14:45``)
and durations (``PT1H``, ``PT5M``, ``P1DT2H``) convert to and from these
integers.

The paper's listings use a trailing ``h`` on datetimes
(``2022-10-14T14:45h``); we accept and ignore it.
"""

from __future__ import annotations

import re
from datetime import datetime, timezone

from repro.errors import TemporalError

#: Alias documenting intent; instants are plain ints (seconds since epoch).
TimeInstant = int

SECOND = 1
MINUTE = 60
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY

_DURATION_RE = re.compile(
    r"^P"
    r"(?:(?P<weeks>\d+(?:\.\d+)?)W)?"
    r"(?:(?P<days>\d+(?:\.\d+)?)D)?"
    r"(?:T"
    r"(?:(?P<hours>\d+(?:\.\d+)?)H)?"
    r"(?:(?P<minutes>\d+(?:\.\d+)?)M)?"
    r"(?:(?P<seconds>\d+(?:\.\d+)?)S)?"
    r")?$",
    re.IGNORECASE,
)

_DATETIME_FORMATS = (
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%dT%H:%M",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)


def parse_duration(text: str) -> int:
    """Parse an ISO-8601 duration into a number of seconds.

    >>> parse_duration("PT1H")
    3600
    >>> parse_duration("PT5M")
    300
    >>> parse_duration("P1DT2H30M")
    95400
    """
    if not isinstance(text, str):
        raise TemporalError(f"duration must be a string, got {text!r}")
    match = _DURATION_RE.match(text.strip())
    if not match or text.strip().upper() in ("P", "PT"):
        raise TemporalError(f"invalid ISO-8601 duration: {text!r}")
    parts = {name: float(value) for name, value in match.groupdict().items() if value}
    if not parts:
        raise TemporalError(f"invalid ISO-8601 duration: {text!r}")
    seconds = (
        parts.get("weeks", 0.0) * WEEK
        + parts.get("days", 0.0) * DAY
        + parts.get("hours", 0.0) * HOUR
        + parts.get("minutes", 0.0) * MINUTE
        + parts.get("seconds", 0.0)
    )
    if seconds != int(seconds):
        raise TemporalError(f"sub-second durations are not supported: {text!r}")
    return int(seconds)


def format_duration(seconds: int) -> str:
    """Render a second count as a compact ISO-8601 duration.

    >>> format_duration(3600)
    'PT1H'
    >>> format_duration(95400)
    'P1DT2H30M'
    """
    if seconds < 0:
        raise TemporalError("durations cannot be negative")
    if seconds == 0:
        return "PT0S"
    days, rest = divmod(seconds, DAY)
    hours, rest = divmod(rest, HOUR)
    minutes, secs = divmod(rest, MINUTE)
    out = "P"
    if days:
        out += f"{days}D"
    if hours or minutes or secs:
        out += "T"
        if hours:
            out += f"{hours}H"
        if minutes:
            out += f"{minutes}M"
        if secs:
            out += f"{secs}S"
    return out


def parse_datetime(text: str) -> TimeInstant:
    """Parse an ISO-8601 datetime (UTC assumed) to a time instant.

    Accepts the paper's trailing ``h`` suffix and a trailing ``Z``.

    >>> parse_datetime("2022-10-14T14:45") == parse_datetime("2022-10-14T14:45h")
    True
    """
    if not isinstance(text, str):
        raise TemporalError(f"datetime must be a string, got {text!r}")
    cleaned = text.strip()
    if cleaned.endswith(("h", "H", "z", "Z")):
        cleaned = cleaned[:-1]
    for fmt in _DATETIME_FORMATS:
        try:
            parsed = datetime.strptime(cleaned, fmt)
        except ValueError:
            continue
        return int(parsed.replace(tzinfo=timezone.utc).timestamp())
    raise TemporalError(f"invalid ISO-8601 datetime: {text!r}")


def format_datetime(instant: TimeInstant) -> str:
    """Render an instant as ``YYYY-MM-DDTHH:MM:SS`` (UTC)."""
    return datetime.fromtimestamp(int(instant), tz=timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S"
    )


def format_hhmm(instant: TimeInstant) -> str:
    """Render an instant as ``HH:MM`` the way the paper's tables do."""
    return datetime.fromtimestamp(int(instant), tz=timezone.utc).strftime("%H:%M")


def hhmm(text: str, day: str = "2022-08-01") -> TimeInstant:
    """Build an instant from an ``HH:MM`` wall-clock string.

    The paper's running example uses bare times ("14:45h"); we anchor them
    on a fixed day in August 2022 as the narrative describes.

    >>> format_hhmm(hhmm("14:45"))
    '14:45'
    """
    cleaned = text.strip()
    if cleaned.endswith(("h", "H")):
        cleaned = cleaned[:-1]
    if not re.match(r"^\d{1,2}:\d{2}$", cleaned):
        raise TemporalError(f"invalid HH:MM time: {text!r}")
    return parse_datetime(f"{day}T{cleaned}")
