"""Interned, array-backed columnar graph core (ROADMAP item 2).

:class:`ColumnarGraph` is a drop-in snapshot implementation behind the
same public surface as :class:`~repro.graph.model.PropertyGraph` — the
matcher, the physical operators, the delta layer, and the parallel
workers all consume it transparently because they only touch the public
graph API.  The layout is columnar instead of dict-of-dicts:

* **Interning** — every node id is assigned a dense *slot* (an index
  into parallel arrays) by an interning table; relationships get dense
  *rel-slots* the same way.
* **CSR adjacency** — per-node outgoing/incoming relationship lists are
  stored as two flat ``array('q')`` pairs (offsets + rel-slot values),
  one pair for the all-type view and lazily one pair per relationship
  type (stably filtered, so per-type enumeration preserves the global
  traversal order).
* **Label / property columns** — per-label slot arrays plus the same
  lazily-built ``(label, key) → {value bucket → node ids}`` equality
  columns the reference graph maintains, all listing members in the one
  global node order.
* **O(delta) overlays** — :meth:`ColumnarGraph.patched` layers an
  overlay (appended/overridden nodes and relationships, dead slots,
  per-node adjacency and per-label bucket overrides) over the shared
  immutable core instead of flat-copying every index dict the way the
  reference ``patched`` does; when the overlay grows past half the core
  it is compacted into a fresh core, keeping the amortized per-patch
  cost proportional to the delta.

The single load-bearing invariant is the *move-to-end global ordering*
documented on :meth:`PropertyGraph.patched`: upserted nodes move to the
end of the node order and of every label/property bucket, relationship
upserts keep their enumeration position (adjacency moves to the end of
the endpoint rows only when endpoints change).  Every enumeration this
class exposes — node scans, label scans, index seeks, CSR expansions —
replays exactly the sequence the reference graph would produce, which is
what makes emissions byte-identical across backends (verified by the
hypothesis backend-axis matrix in ``tests/properties/``).

On top of layout, the class memoizes the hot read paths per immutable
snapshot instance: :meth:`expand_pairs` (consumed by
:class:`~repro.cypher.matcher.PatternMatcher` and therefore by the
physical ExpandHop/VarLengthExpand operators), label-scan tuples, and
index-seek tuples.  ``__reduce__`` ships a compact column form (id
arrays + pooled label sets / type names) across process boundaries and
rebuilds via :meth:`of`, mirroring the reference pickle contract.
"""

from __future__ import annotations

import os
from array import array
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import EngineError, GraphConsistencyError
from repro.graph.model import (
    Node,
    NodeId,
    PropertyGraph,
    Relationship,
    RelationshipId,
    _prop_entries,
    _same_node,
    _same_relationship,
)
from repro.graph.store import GraphStore
from repro.graph.values import property_index_key

__all__ = [
    "ColumnarGraph",
    "ColumnarStore",
    "GRAPH_BACKENDS",
    "resolve_backend",
    "resolve_backend_name",
]

#: Environment override consumed when a backend name is not given
#: explicitly — lets CI re-run the whole suite under the columnar core.
BACKEND_ENV_VAR = "REPRO_GRAPH_BACKEND"


class _Core:
    """The immutable compacted column store one or more graphs share.

    ``node_objs``/``node_ids`` are parallel slot-indexed arrays;
    ``slot_of`` is the interning table.  Adjacency is CSR: for node slot
    ``s``, its outgoing rel-slots are
    ``out_rslots[out_off[s]:out_off[s + 1]]``, in traversal order.
    ``by_label`` maps each label to the member slots in global node
    order.
    """

    __slots__ = (
        "node_objs", "node_ids", "slot_of",
        "rel_objs", "rel_ids", "rslot_of",
        "out_off", "out_rslots", "in_off", "in_rslots",
        "by_label",
    )

    def __init__(
        self,
        nodes: Iterable[Node],
        relationships: Iterable[Relationship],
        out_adj: Mapping[NodeId, Iterable[RelationshipId]],
        in_adj: Mapping[NodeId, Iterable[RelationshipId]],
    ):
        self.node_objs: List[Node] = list(nodes)
        self.node_ids = array("q", (node.id for node in self.node_objs))
        self.slot_of: Dict[NodeId, int] = {
            node_id: slot for slot, node_id in enumerate(self.node_ids)
        }
        self.rel_objs: List[Relationship] = list(relationships)
        self.rel_ids = array("q", (rel.id for rel in self.rel_objs))
        self.rslot_of: Dict[RelationshipId, int] = {
            rel_id: rslot for rslot, rel_id in enumerate(self.rel_ids)
        }
        rslot_of = self.rslot_of
        for direction, adjacency in (("out", out_adj), ("in", in_adj)):
            offsets = array("q", [0])
            rslots = array("q")
            total = 0
            for node_id in self.node_ids:
                for rel_id in adjacency.get(node_id, ()):
                    rslots.append(rslot_of[rel_id])
                    total += 1
                offsets.append(total)
            if direction == "out":
                self.out_off, self.out_rslots = offsets, rslots
            else:
                self.in_off, self.in_rslots = offsets, rslots
        by_label: Dict[str, array] = {}
        for slot, node in enumerate(self.node_objs):
            for label in node.labels:
                bucket = by_label.get(label)
                if bucket is None:
                    bucket = by_label[label] = array("q")
                bucket.append(slot)
        self.by_label = by_label


class _NodesView(Mapping):
    """Mapping view over a graph's live nodes in global node order."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "ColumnarGraph"):
        self._graph = graph

    def __getitem__(self, node_id: NodeId) -> Node:
        node = self._graph._node_or_none(node_id)
        if node is None:
            raise KeyError(node_id)
        return node

    def get(self, node_id: NodeId, default: Any = None) -> Any:
        node = self._graph._node_or_none(node_id)
        return default if node is None else node

    def __contains__(self, node_id: object) -> bool:
        return self._graph._node_or_none(node_id) is not None

    def __len__(self) -> int:
        return self._graph._n_nodes

    def __iter__(self) -> Iterator[NodeId]:
        graph = self._graph
        dead = graph._dead_slots
        for slot, node_id in enumerate(graph._core.node_ids):
            if slot not in dead:
                yield node_id
        yield from graph._ov_nodes

    def values(self):  # type: ignore[override]
        graph = self._graph
        dead = graph._dead_slots
        for slot, node in enumerate(graph._core.node_objs):
            if slot not in dead:
                yield node
        yield from graph._ov_nodes.values()

    def items(self):  # type: ignore[override]
        for node in self.values():
            yield node.id, node


class _RelationshipsView(Mapping):
    """Mapping view over live relationships in enumeration order."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "ColumnarGraph"):
        self._graph = graph

    def __getitem__(self, rel_id: RelationshipId) -> Relationship:
        rel = self._graph._rel_or_none(rel_id)
        if rel is None:
            raise KeyError(rel_id)
        return rel

    def get(self, rel_id: RelationshipId, default: Any = None) -> Any:
        rel = self._graph._rel_or_none(rel_id)
        return default if rel is None else rel

    def __contains__(self, rel_id: object) -> bool:
        return self._graph._rel_or_none(rel_id) is not None

    def __len__(self) -> int:
        return self._graph._n_rels

    def __iter__(self) -> Iterator[RelationshipId]:
        for rel in self.values():
            yield rel.id

    def values(self):  # type: ignore[override]
        graph = self._graph
        dead = graph._dead_rslots
        over = graph._rel_over
        for rslot, rel in enumerate(graph._core.rel_objs):
            if rslot not in dead:
                updated = over.get(rslot)
                yield rel if updated is None else updated
        yield from graph._ov_rels.values()

    def items(self):  # type: ignore[override]
        for rel in self.values():
            yield rel.id, rel


class ColumnarGraph:
    """An immutable property graph over a shared columnar core + overlay.

    Public surface mirrors :class:`~repro.graph.model.PropertyGraph`
    (duck-typed, not a subclass — subclassing would force populating the
    reference dict fields and forfeit the layout).  See the module
    docstring for the layout and the ordering invariant.
    """

    __slots__ = (
        "_core",
        "_ov_nodes", "_dead_slots", "_n_nodes",
        "_ov_rels", "_rel_over", "_dead_rslots", "_n_rels",
        "_ov_out", "_ov_in", "_ov_by_label", "_by_type",
        "_prop_index",
        "_nodes_view", "_rels_view",
        "_expand_cache", "_labels_cache", "_seek_cache", "_typed_csr",
        "_degree_cols", "_candidate_pruner",
    )

    def __init__(
        self,
        core: _Core,
        ov_nodes: Dict[NodeId, Node],
        dead_slots: Set[int],
        ov_rels: Dict[RelationshipId, Relationship],
        rel_over: Dict[int, Relationship],
        dead_rslots: Set[int],
        ov_out: Dict[NodeId, Tuple[RelationshipId, ...]],
        ov_in: Dict[NodeId, Tuple[RelationshipId, ...]],
        ov_by_label: Dict[str, Tuple[NodeId, ...]],
        by_type: Dict[str, int],
        n_nodes: int,
        n_rels: int,
        prop_index: Optional[Dict[Tuple[str, str], Dict[tuple, tuple]]],
    ):
        self._core = core
        self._ov_nodes = ov_nodes
        self._dead_slots = dead_slots
        self._ov_rels = ov_rels
        self._rel_over = rel_over
        self._dead_rslots = dead_rslots
        self._ov_out = ov_out
        self._ov_in = ov_in
        self._ov_by_label = ov_by_label
        self._by_type = by_type
        self._n_nodes = n_nodes
        self._n_rels = n_rels
        self._prop_index = prop_index
        self._nodes_view = _NodesView(self)
        self._rels_view = _RelationshipsView(self)
        self._expand_cache: Dict[tuple, tuple] = {}
        self._labels_cache: Dict[frozenset, tuple] = {}
        self._seek_cache: Dict[tuple, tuple] = {}
        self._typed_csr: Dict[Tuple[str, str], Tuple[array, array]] = {}
        self._degree_cols: Optional[Tuple[array, array]] = None
        # Per-snapshot candidate pruner (repro.cypher.vectorized), attached
        # lazily by pruner_for(); a new graph object — patched() overlay or
        # compaction — starts with no pruner, which is what invalidates
        # the pruned-set memo across graph versions.
        self._candidate_pruner: Optional[object] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def of(
        cls,
        nodes: Iterable[Node] = (),
        relationships: Iterable[Relationship] = (),
    ) -> "ColumnarGraph":
        """Build and validate a graph (same contract as the reference)."""
        node_map: Dict[NodeId, Node] = {}
        for node in nodes:
            existing = node_map.get(node.id)
            if existing is not None and not _same_node(existing, node):
                raise GraphConsistencyError(f"duplicate node id {node.id}")
            node_map[node.id] = node
        rel_map: Dict[RelationshipId, Relationship] = {}
        out_adj: Dict[NodeId, list] = {}
        in_adj: Dict[NodeId, list] = {}
        by_type: Dict[str, int] = {}
        for rel in relationships:
            if rel.id in rel_map:
                raise GraphConsistencyError(
                    f"duplicate relationship id {rel.id}"
                )
            if rel.src not in node_map:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling source {rel.src}"
                )
            if rel.trg not in node_map:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling target {rel.trg}"
                )
            rel_map[rel.id] = rel
            out_adj.setdefault(rel.src, []).append(rel.id)
            in_adj.setdefault(rel.trg, []).append(rel.id)
            by_type[rel.type] = by_type.get(rel.type, 0) + 1
        core = _Core(node_map.values(), rel_map.values(), out_adj, in_adj)
        return cls(
            core, {}, set(), {}, {}, set(), {}, {}, {},
            by_type, len(node_map), len(rel_map), None,
        )

    @staticmethod
    def empty() -> "ColumnarGraph":
        return _EMPTY_COLUMNAR

    # -- low-level lookups -------------------------------------------------

    def _node_or_none(self, node_id: Any) -> Optional[Node]:
        node = self._ov_nodes.get(node_id)
        if node is not None:
            return node
        slot = self._core.slot_of.get(node_id)
        if slot is None or slot in self._dead_slots:
            return None
        return self._core.node_objs[slot]

    def _rel_or_none(self, rel_id: Any) -> Optional[Relationship]:
        rel = self._ov_rels.get(rel_id)
        if rel is not None:
            return rel
        rslot = self._core.rslot_of.get(rel_id)
        if rslot is None or rslot in self._dead_rslots:
            return None
        updated = self._rel_over.get(rslot)
        return self._core.rel_objs[rslot] if updated is None else updated

    def _row_slots(self, node_id: NodeId, out: bool) -> Optional[array]:
        """The core CSR row for a live, non-overridden node (else None)."""
        slot = self._core.slot_of.get(node_id)
        if slot is None:
            return None
        if slot in self._dead_slots and node_id not in self._ov_nodes:
            return None
        core = self._core
        if out:
            return core.out_rslots[core.out_off[slot]:core.out_off[slot + 1]]
        return core.in_rslots[core.in_off[slot]:core.in_off[slot + 1]]

    def _adj_ids(self, node_id: NodeId, out: bool) -> Tuple[RelationshipId, ...]:
        """Current adjacency rel ids of ``node_id`` (override or core)."""
        override = (self._ov_out if out else self._ov_in).get(node_id)
        if override is not None:
            return override
        row = self._row_slots(node_id, out)
        if row is None:
            return ()
        rel_ids = self._core.rel_ids
        return tuple(rel_ids[rslot] for rslot in row)

    def _iter_adj(self, node_id: NodeId, out: bool) -> Iterator[Relationship]:
        override = (self._ov_out if out else self._ov_in).get(node_id)
        if override is not None:
            for rel_id in override:
                rel = self._rel_or_none(rel_id)
                if rel is not None:
                    yield rel
            return
        row = self._row_slots(node_id, out)
        if row is None:
            return
        rel_objs = self._core.rel_objs
        over = self._rel_over
        for rslot in row:
            updated = over.get(rslot)
            yield rel_objs[rslot] if updated is None else updated

    def _bucket_ids(self, label: str) -> Tuple[NodeId, ...]:
        override = self._ov_by_label.get(label)
        if override is not None:
            return override
        slots = self._core.by_label.get(label)
        if slots is None:
            return ()
        node_ids = self._core.node_ids
        return tuple(node_ids[slot] for slot in slots)

    # -- public accessors --------------------------------------------------

    @property
    def nodes(self) -> Mapping[NodeId, Node]:
        return self._nodes_view

    @property
    def relationships(self) -> Mapping[RelationshipId, Relationship]:
        return self._rels_view

    def node(self, node_id: NodeId) -> Node:
        node = self._node_or_none(node_id)
        if node is None:
            raise KeyError(node_id)
        return node

    def relationship(self, rel_id: RelationshipId) -> Relationship:
        rel = self._rel_or_none(rel_id)
        if rel is None:
            raise KeyError(rel_id)
        return rel

    def outgoing(self, node_id: NodeId) -> Iterator[Relationship]:
        """Relationships with ``src = node_id``."""
        return self._iter_adj(node_id, out=True)

    def incoming(self, node_id: NodeId) -> Iterator[Relationship]:
        """Relationships with ``trg = node_id``."""
        return self._iter_adj(node_id, out=False)

    def incident(self, node_id: NodeId) -> Iterator[Relationship]:
        """All relationships touching ``node_id`` (undirected view).

        A self-loop appears in both adjacency rows but is yielded exactly
        once, matching :meth:`PropertyGraph.incident`.
        """
        seen = set()
        for rel in self.outgoing(node_id):
            seen.add(rel.id)
            yield rel
        for rel in self.incoming(node_id):
            if rel.id not in seen:
                yield rel

    def nodes_with_labels(self, labels: Iterable[str]) -> Iterator[Node]:
        """All nodes carrying every label, in global node order (memoized)."""
        wanted = frozenset(labels)
        if not wanted:
            yield from self._nodes_view.values()
            return
        cached = self._labels_cache.get(wanted)
        if cached is None:
            candidate_lists: Optional[List[Tuple[NodeId, ...]]] = []
            for label in wanted:
                ids = self._bucket_ids(label)
                if not ids:
                    candidate_lists = None
                    break
                candidate_lists.append(ids)
            if candidate_lists is None:
                cached = ()
            else:
                smallest = min(candidate_lists, key=len)
                cached = tuple(
                    node
                    for node in map(self._node_or_none, smallest)
                    if wanted <= node.labels
                )
            self._labels_cache[wanted] = cached
        yield from cached

    def _prop_buckets(
        self,
    ) -> Dict[Tuple[str, str], Dict[tuple, tuple]]:
        index = self._prop_index
        if index is None:
            index = {}
            for node in self._nodes_view.values():
                for label_key, value_key in _prop_entries(node):
                    buckets = index.setdefault(label_key, {})
                    buckets[value_key] = buckets.get(value_key, ()) + (node.id,)
            self._prop_index = index
        return index

    def nodes_with_property(
        self, label: str, key: str, value: Any
    ) -> Optional[Tuple[Node, ...]]:
        """Index seek from the property columns (superset contract, memoized).

        Same contract as :meth:`PropertyGraph.nodes_with_property`:
        ``None`` for unindexable values, otherwise a superset of the true
        matches in global node order.
        """
        value_key = property_index_key(value)
        if value_key is None:
            return None
        cache_key = (label, key, value_key)
        cached = self._seek_cache.get(cache_key)
        if cached is None:
            ids = self._prop_buckets().get((label, key), {}).get(value_key, ())
            cached = tuple(self._node_or_none(node_id) for node_id in ids)
            self._seek_cache[cache_key] = cached
        return cached

    def label_id_column(self, label: str) -> Tuple[NodeId, ...]:
        """The node-id column for ``label``, in global node order.

        The raw per-label column the vectorized candidate pruner
        (:mod:`repro.cypher.vectorized`) intersects — exact, not a
        superset: every listed node carries ``label`` and no carrier is
        missing.
        """
        return self._bucket_ids(label)

    def property_id_column(
        self, label: str, key: str, value_key: tuple
    ) -> Tuple[NodeId, ...]:
        """The node-id column for one equality-index bucket, in global
        node order.

        ``value_key`` is a type-tagged bucket key from
        :func:`~repro.graph.values.property_index_key`.  Same superset
        contract as :meth:`nodes_with_property`: the bucket lists every
        ``label``-carrying node whose ``key`` may Cypher-equal the
        bucketed value (``1`` and ``1.0`` share a bucket), so callers
        must re-check with ``cypher_equals``.
        """
        return self._prop_buckets().get((label, key), {}).get(value_key, ())

    def degree_columns(self) -> Tuple[array, array]:
        """Exact ``(out_degree, in_degree)`` arrays in global node order.

        Memoized per snapshot; overlay adjacency is folded in, so the
        arrays stay exact across ``patched()`` views.  Cardinality food
        for expansion-cost heuristics and benchmark metadata.
        """
        cached = self._degree_cols
        if cached is None:
            out_col = array("q")
            in_col = array("q")
            for node_id in self._nodes_view:
                out_col.append(sum(1 for _ in self.outgoing(node_id)))
                in_col.append(sum(1 for _ in self.incoming(node_id)))
            cached = (out_col, in_col)
            self._degree_cols = cached
        return cached

    def rel_type_count(self, rel_type: str) -> int:
        return self._by_type.get(rel_type, 0)

    def rel_type_counts(self) -> Dict[str, int]:
        return dict(self._by_type)

    def label_count(self, label: str) -> int:
        override = self._ov_by_label.get(label)
        if override is not None:
            return len(override)
        slots = self._core.by_label.get(label)
        return 0 if slots is None else len(slots)

    def label_counts(self) -> Dict[str, int]:
        counts = {
            label: len(slots) for label, slots in self._core.by_label.items()
        }
        for label, ids in self._ov_by_label.items():
            if ids:
                counts[label] = len(ids)
            else:
                counts.pop(label, None)
        return counts

    @property
    def order(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def size(self) -> int:
        """Number of relationships."""
        return self._n_rels

    def is_empty(self) -> bool:
        return self._n_nodes == 0 and self._n_rels == 0

    def degree(self, node_id: NodeId) -> int:
        total = 0
        for out in (True, False):
            override = (self._ov_out if out else self._ov_in).get(node_id)
            if override is not None:
                total += len(override)
            else:
                row = self._row_slots(node_id, out)
                total += 0 if row is None else len(row)
        return total

    # -- columnar fast paths -----------------------------------------------

    def _typed_row(
        self, direction: str, rel_type: str
    ) -> Tuple[array, array]:
        """The lazily-built per-type CSR pair for one direction.

        A stable filter of the all-type CSR (with relationship updates
        applied), so per-type rows preserve the relative traversal order
        of the unfiltered rows — typed expansion enumerates the exact
        subsequence the interpreted filter would.
        """
        key = (direction, rel_type)
        pair = self._typed_csr.get(key)
        if pair is None:
            core = self._core
            if direction == "out":
                src_off, src_rslots = core.out_off, core.out_rslots
            else:
                src_off, src_rslots = core.in_off, core.in_rslots
            over = self._rel_over
            rel_objs = core.rel_objs
            offsets = array("q", [0])
            rslots = array("q")
            total = 0
            for slot in range(len(core.node_objs)):
                for rslot in src_rslots[src_off[slot]:src_off[slot + 1]]:
                    rel = over.get(rslot)
                    if rel is None:
                        rel = rel_objs[rslot]
                    if rel.type == rel_type:
                        rslots.append(rslot)
                        total += 1
                offsets.append(total)
            pair = (offsets, rslots)
            self._typed_csr[key] = pair
        return pair

    def _expand_rels(
        self, node_id: NodeId, out: bool, types: Tuple[str, ...]
    ) -> Iterator[Relationship]:
        """Type-filtered adjacency in traversal order (order-stable)."""
        override = (self._ov_out if out else self._ov_in).get(node_id)
        if override is not None:
            for rel_id in override:
                rel = self._rel_or_none(rel_id)
                if rel is not None and (not types or rel.type in types):
                    yield rel
            return
        if types and len(types) == 1:
            slot = self._core.slot_of.get(node_id)
            if slot is None or (
                slot in self._dead_slots and node_id not in self._ov_nodes
            ):
                return
            offsets, rslots = self._typed_row(
                "out" if out else "in", types[0]
            )
            rel_objs = self._core.rel_objs
            over = self._rel_over
            for rslot in rslots[offsets[slot]:offsets[slot + 1]]:
                updated = over.get(rslot)
                yield rel_objs[rslot] if updated is None else updated
            return
        for rel in self._iter_adj(node_id, out):
            if not types or rel.type in types:
                yield rel

    def expand_pairs(
        self, node_id: NodeId, direction: str, types: Tuple[str, ...]
    ) -> Tuple[Tuple[Relationship, Node], ...]:
        """Memoized ``(relationship, neighbour)`` pairs for one expansion.

        ``direction`` is ``"out"``, ``"in"``, or ``"any"``; ``types`` is
        the pattern's type tuple (empty = untyped).  Pairs come back in
        exactly the order the interpreted
        :meth:`~repro.cypher.matcher.PatternMatcher._expand` would
        produce them, *before* its used-relationship and property
        filters (those depend on the match state and stay in the
        matcher).  The tuple is cached per (node, direction, types) on
        this immutable snapshot — repeated expansions during var-length
        walks and across evaluations of a reused window are array reads.
        """
        key = (node_id, direction, types)
        cached = self._expand_cache.get(key)
        if cached is not None:
            return cached
        pairs: List[Tuple[Relationship, Node]] = []
        if direction == "out":
            for rel in self._expand_rels(node_id, True, types):
                pairs.append((rel, self.node(rel.trg)))
        elif direction == "in":
            for rel in self._expand_rels(node_id, False, types):
                pairs.append((rel, self.node(rel.src)))
        else:
            seen = set()
            for rel in self._expand_rels(node_id, True, types):
                seen.add(rel.id)
                pairs.append((rel, self.node(rel.other_end(node_id))))
            for rel in self._expand_rels(node_id, False, types):
                if rel.id not in seen:
                    pairs.append((rel, self.node(rel.other_end(node_id))))
        result = tuple(pairs)
        self._expand_cache[key] = result
        return result

    # -- patching ----------------------------------------------------------

    def patched(
        self,
        nodes: Iterable[Node] = (),
        relationships: Iterable[Relationship] = (),
        removed_nodes: Iterable[NodeId] = (),
        removed_rels: Iterable[RelationshipId] = (),
    ) -> "ColumnarGraph":
        """A new graph with the upserts/removals applied as an overlay.

        Semantics, validation, and the move-to-end ordering invariant
        match :meth:`PropertyGraph.patched` exactly; the cost is
        O(delta + overlay) instead of O(graph) because the compacted
        core is shared, with an automatic compaction once the overlay
        outgrows half the core (amortized O(delta) per patch).
        """
        core = self._core
        ov_nodes = dict(self._ov_nodes)
        dead_slots = set(self._dead_slots)
        ov_rels = dict(self._ov_rels)
        rel_over = dict(self._rel_over)
        dead_rslots = set(self._dead_rslots)
        ov_out = dict(self._ov_out)
        ov_in = dict(self._ov_in)
        ov_by_label = dict(self._ov_by_label)
        by_type = dict(self._by_type)
        n_nodes = self._n_nodes
        n_rels = self._n_rels
        prop_index: Optional[Dict[Tuple[str, str], Dict[tuple, tuple]]]
        prop_index = (
            dict(self._prop_index) if self._prop_index is not None else None
        )
        prop_copied: set = set()

        def cur_node(node_id: NodeId) -> Optional[Node]:
            node = ov_nodes.get(node_id)
            if node is not None:
                return node
            slot = core.slot_of.get(node_id)
            if slot is None or slot in dead_slots:
                return None
            return core.node_objs[slot]

        def cur_rel(rel_id: RelationshipId) -> Optional[Relationship]:
            rel = ov_rels.get(rel_id)
            if rel is not None:
                return rel
            rslot = core.rslot_of.get(rel_id)
            if rslot is None or rslot in dead_rslots:
                return None
            updated = rel_over.get(rslot)
            return core.rel_objs[rslot] if updated is None else updated

        def cur_adj(node_id: NodeId, out: bool) -> Tuple[RelationshipId, ...]:
            override = (ov_out if out else ov_in).get(node_id)
            if override is not None:
                return override
            slot = core.slot_of.get(node_id)
            if slot is None:
                return ()
            if slot in dead_slots and node_id not in ov_nodes:
                return ()
            if out:
                row = core.out_rslots[core.out_off[slot]:core.out_off[slot + 1]]
            else:
                row = core.in_rslots[core.in_off[slot]:core.in_off[slot + 1]]
            rel_ids = core.rel_ids
            return tuple(rel_ids[rslot] for rslot in row)

        def cur_bucket(label: str) -> Tuple[NodeId, ...]:
            override = ov_by_label.get(label)
            if override is not None:
                return override
            slots = core.by_label.get(label)
            if slots is None:
                return ()
            node_ids = core.node_ids
            return tuple(node_ids[slot] for slot in slots)

        def prop_buckets_for(label_key: Tuple[str, str]) -> Dict[tuple, tuple]:
            assert prop_index is not None
            buckets = prop_index.get(label_key)
            if buckets is None:
                buckets = prop_index[label_key] = {}
                prop_copied.add(label_key)
            elif label_key not in prop_copied:
                buckets = prop_index[label_key] = dict(buckets)
                prop_copied.add(label_key)
            return buckets

        def prop_unindex(node: Node) -> None:
            for label_key, value_key in _prop_entries(node):
                if label_key not in prop_index:  # type: ignore[operator]
                    continue
                buckets = prop_buckets_for(label_key)
                ids = buckets.get(value_key)
                if ids is None:
                    continue
                stripped = tuple(i for i in ids if i != node.id)
                if stripped:
                    buckets[value_key] = stripped
                else:
                    del buckets[value_key]
                    if not buckets:
                        del prop_index[label_key]  # type: ignore[union-attr]

        def prop_indexed(node: Node) -> None:
            for label_key, value_key in _prop_entries(node):
                buckets = prop_buckets_for(label_key)
                buckets[value_key] = buckets.get(value_key, ()) + (node.id,)

        for rel_id in removed_rels:
            rel = cur_rel(rel_id)
            if rel is None:
                raise GraphConsistencyError(
                    f"cannot remove unknown relationship {rel_id}"
                )
            if rel_id in ov_rels:
                del ov_rels[rel_id]
            else:
                rslot = core.rslot_of[rel_id]
                dead_rslots.add(rslot)
                rel_over.pop(rslot, None)
            ov_out[rel.src] = tuple(
                i for i in cur_adj(rel.src, True) if i != rel_id
            )
            ov_in[rel.trg] = tuple(
                i for i in cur_adj(rel.trg, False) if i != rel_id
            )
            count = by_type.get(rel.type, 0) - 1
            if count > 0:
                by_type[rel.type] = count
            else:
                by_type.pop(rel.type, None)
            n_rels -= 1

        for node_id in removed_nodes:
            node = cur_node(node_id)
            if node is None:
                raise GraphConsistencyError(
                    f"cannot remove unknown node {node_id}"
                )
            if cur_adj(node_id, True) or cur_adj(node_id, False):
                raise GraphConsistencyError(
                    f"removing node {node_id} would dangle its relationships"
                )
            if node_id in ov_nodes:
                del ov_nodes[node_id]
            else:
                dead_slots.add(core.slot_of[node_id])
            if node_id in core.slot_of:
                # Pin empty adjacency overrides: if the id is later
                # re-upserted, the (stale) core CSR rows of its dead
                # slot must never resurface.
                ov_out[node_id] = ()
                ov_in[node_id] = ()
            else:
                ov_out.pop(node_id, None)
                ov_in.pop(node_id, None)
            for label in node.labels:
                ov_by_label[label] = tuple(
                    i for i in cur_bucket(label) if i != node_id
                )
            if prop_index is not None:
                prop_unindex(node)
            n_nodes -= 1

        # Upserts move to the end of every enumeration order, batched the
        # same way the reference implementation batches them.
        upserts: Dict[NodeId, Node] = {}
        for node in nodes:
            upserts[node.id] = node  # dedupe: last upsert of an id wins
        if upserts:
            affected_labels: set = set()
            olds: Dict[NodeId, Optional[Node]] = {}
            for node_id, node in upserts.items():
                old = cur_node(node_id)
                olds[node_id] = old
                if old is not None:
                    affected_labels.update(old.labels)
                    if node_id in ov_nodes:
                        del ov_nodes[node_id]  # move to end of overlay
                    else:
                        dead_slots.add(core.slot_of[node_id])
                else:
                    n_nodes += 1
                affected_labels.update(node.labels)
                ov_nodes[node_id] = node
            moved = set(upserts)
            for label in affected_labels:
                ids = cur_bucket(label)
                if ids:
                    ov_by_label[label] = tuple(
                        i for i in ids if i not in moved
                    )
            for node_id, node in upserts.items():
                for label in node.labels:
                    ov_by_label[label] = ov_by_label.get(label, ()) + (node_id,)
            if prop_index is not None:
                for node_id, old in olds.items():
                    if old is not None:
                        prop_unindex(old)
                for node in upserts.values():
                    prop_indexed(node)

        for rel in relationships:
            if cur_node(rel.src) is None:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling source {rel.src}"
                )
            if cur_node(rel.trg) is None:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling target {rel.trg}"
                )
            old = cur_rel(rel.id)
            if old is None:
                ov_rels[rel.id] = rel
                by_type[rel.type] = by_type.get(rel.type, 0) + 1
                n_rels += 1
                ov_out[rel.src] = cur_adj(rel.src, True) + (rel.id,)
                ov_in[rel.trg] = cur_adj(rel.trg, False) + (rel.id,)
                continue
            # Existing relationship: enumeration position is kept.
            if rel.id in ov_rels:
                ov_rels[rel.id] = rel
            else:
                rel_over[core.rslot_of[rel.id]] = rel
            if old.type != rel.type:
                count = by_type.get(old.type, 0) - 1
                if count > 0:
                    by_type[old.type] = count
                else:
                    by_type.pop(old.type, None)
                by_type[rel.type] = by_type.get(rel.type, 0) + 1
            if (old.src, old.trg) == (rel.src, rel.trg):
                continue  # endpoints unchanged: adjacency already right
            ov_out[old.src] = tuple(
                i for i in cur_adj(old.src, True) if i != rel.id
            )
            ov_in[old.trg] = tuple(
                i for i in cur_adj(old.trg, False) if i != rel.id
            )
            ov_out[rel.src] = cur_adj(rel.src, True) + (rel.id,)
            ov_in[rel.trg] = cur_adj(rel.trg, False) + (rel.id,)

        patched = ColumnarGraph(
            core, ov_nodes, dead_slots, ov_rels, rel_over, dead_rslots,
            ov_out, ov_in, ov_by_label, by_type, n_nodes, n_rels, prop_index,
        )
        overlay = (
            len(ov_nodes) + len(dead_slots) + len(ov_rels)
            + len(rel_over) + len(dead_rslots)
        )
        core_size = len(core.node_objs) + len(core.rel_objs)
        if 2 * overlay >= max(core_size, 1):
            return patched._compacted()
        return patched

    def _compacted(self) -> "ColumnarGraph":
        """This graph over a fresh core with an empty overlay.

        Enumeration orders are carried verbatim: nodes/relationships in
        current global order, adjacency rows as currently materialized
        (label buckets and property columns are order-derivable from the
        global node order, so they are rebuilt/carried respectively).
        """
        nodes = list(self._nodes_view.values())
        rels = list(self._rels_view.values())
        out_adj = {node.id: self._adj_ids(node.id, True) for node in nodes}
        in_adj = {node.id: self._adj_ids(node.id, False) for node in nodes}
        core = _Core(nodes, rels, out_adj, in_adj)
        return ColumnarGraph(
            core, {}, set(), {}, {}, set(), {}, {}, {},
            dict(self._by_type), self._n_nodes, self._n_rels,
            self._prop_index,
        )

    # -- equality / pickling ----------------------------------------------

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Node):
            return self._node_or_none(item.id) == item
        if isinstance(item, Relationship):
            return self._rel_or_none(item.id) == item
        return False

    def __eq__(self, other: object) -> bool:
        """Structural equality, interoperable with any graph exposing the
        public ``nodes``/``relationships`` mappings (the reference
        implementation included)."""
        other_nodes = getattr(other, "nodes", None)
        other_rels = getattr(other, "relationships", None)
        if not isinstance(other_nodes, Mapping) \
                or not isinstance(other_rels, Mapping):
            return NotImplemented
        if set(self._nodes_view) != set(other_nodes):
            return False
        if set(self._rels_view) != set(other_rels):
            return False
        for node_id, node in self._nodes_view.items():
            if not _same_node(node, other_nodes[node_id]):
                return False
        for rel_id, rel in self._rels_view.items():
            if not _same_relationship(rel, other_rels[rel_id]):
                return False
        return True

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._nodes_view), frozenset(self._rels_view))
        )

    def __reduce__(self):
        # Compact column transport: id/src/trg arrays plus pooled label
        # sets and type names; rebuilt via of() so the receiving side
        # reproduces the same enumeration orders the reference pickle
        # contract guarantees.
        label_pool: Dict[Tuple[str, ...], int] = {}
        pools: List[Tuple[str, ...]] = []
        node_ids = array("q")
        node_labels = array("q")
        node_props: List[Optional[dict]] = []
        for node in self._nodes_view.values():
            node_ids.append(node.id)
            pool_key = tuple(sorted(node.labels))
            index = label_pool.get(pool_key)
            if index is None:
                index = label_pool[pool_key] = len(pools)
                pools.append(pool_key)
            node_labels.append(index)
            props = dict(node.properties)
            node_props.append(props if props else None)
        type_pool: Dict[str, int] = {}
        type_names: List[str] = []
        rel_ids = array("q")
        rel_types = array("q")
        rel_srcs = array("q")
        rel_trgs = array("q")
        rel_props: List[Optional[dict]] = []
        for rel in self._rels_view.values():
            rel_ids.append(rel.id)
            index = type_pool.get(rel.type)
            if index is None:
                index = type_pool[rel.type] = len(type_names)
                type_names.append(rel.type)
            rel_types.append(index)
            rel_srcs.append(rel.src)
            rel_trgs.append(rel.trg)
            props = dict(rel.properties)
            rel_props.append(props if props else None)
        return (
            _rebuild_columnar,
            (
                (node_ids, node_labels, tuple(pools), tuple(node_props)),
                (
                    rel_ids, rel_types, rel_srcs, rel_trgs,
                    tuple(type_names), tuple(rel_props),
                ),
            ),
        )

    def __repr__(self) -> str:
        return f"ColumnarGraph(order={self.order}, size={self.size})"


def _rebuild_columnar(node_part, rel_part) -> ColumnarGraph:
    """Unpickle target for :meth:`ColumnarGraph.__reduce__`."""
    node_ids, node_labels, pools, node_props = node_part
    rel_ids, rel_types, rel_srcs, rel_trgs, type_names, rel_props = rel_part
    nodes = [
        Node(id=node_id, labels=pools[pool_index], properties=props or {})
        for node_id, pool_index, props
        in zip(node_ids, node_labels, node_props)
    ]
    rels = [
        Relationship(
            id=rel_id, type=type_names[type_index], src=src, trg=trg,
            properties=props or {},
        )
        for rel_id, type_index, src, trg, props
        in zip(rel_ids, rel_types, rel_srcs, rel_trgs, rel_props)
    ]
    return ColumnarGraph.of(nodes, rels)


_EMPTY_COLUMNAR = ColumnarGraph.of()


class ColumnarStore(GraphStore):
    """A :class:`~repro.graph.store.GraphStore` freezing columnar snapshots.

    Identical write semantics; ``graph()`` produces
    :class:`ColumnarGraph` snapshots (full rebuilds via
    :meth:`ColumnarGraph.of`, incremental epochs via
    :meth:`ColumnarGraph.patched`).
    """

    _graph_cls = ColumnarGraph


#: Snapshot-class registry behind ``EngineConfig(graph_backend=...)``.
GRAPH_BACKENDS: Dict[str, type] = {
    "reference": PropertyGraph,
    "columnar": ColumnarGraph,
}


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Validate a backend name; ``None`` defers to the environment.

    The ``REPRO_GRAPH_BACKEND`` environment variable (default
    ``"reference"``) fills in unspecified names, which is how CI re-runs
    entire suites under the columnar core without touching every
    construction site.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "reference"
    if name not in GRAPH_BACKENDS:
        raise EngineError(
            f"unknown graph backend {name!r}; "
            f"expected one of {sorted(GRAPH_BACKENDS)}"
        )
    return name


def resolve_backend(name: Optional[str] = None) -> type:
    """The snapshot class for a backend name (see
    :func:`resolve_backend_name` for ``None`` handling)."""
    return GRAPH_BACKENDS[resolve_backend_name(name)]
