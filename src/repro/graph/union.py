"""Union of property graphs under UNA (Definition 5.4).

Under the Unique Name Assumption, two elements with the same identifier
denote the same real-world entity; their descriptions must therefore be
*consistent* — identical labels/type/endpoints and non-contradictory
property assignments.  Definition 5.4 declares the union of inconsistent
graphs to be ∅; in code we either raise (:func:`union`, strict mode used
by the formal layer) or combine properties last-writer-wins
(:func:`merge`, the engine's ingestion mode, mirroring the behaviour of
the Neo4j Kafka connector ``MERGE`` the paper describes).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import GraphUnionError
from repro.graph.model import Node, PropertyGraph, Relationship


def _check_node_consistent(left: Node, right: Node) -> None:
    if left.labels != right.labels:
        raise GraphUnionError(
            f"node {left.id} has conflicting labels "
            f"{sorted(left.labels)} vs {sorted(right.labels)}"
        )
    for key in left.properties.keys() & right.properties.keys():
        if left.properties[key] != right.properties[key]:
            raise GraphUnionError(
                f"node {left.id} has conflicting values for property {key!r}"
            )


def _check_relationship_consistent(left: Relationship, right: Relationship) -> None:
    if (left.type, left.src, left.trg) != (right.type, right.src, right.trg):
        raise GraphUnionError(
            f"relationship {left.id} has conflicting type/endpoints"
        )
    for key in left.properties.keys() & right.properties.keys():
        if left.properties[key] != right.properties[key]:
            raise GraphUnionError(
                f"relationship {left.id} has conflicting values for property {key!r}"
            )


def _combine_node(left: Node, right: Node) -> Node:
    properties = dict(left.properties)
    properties.update(right.properties)
    return Node(id=left.id, labels=left.labels | right.labels, properties=properties)


def _combine_relationship(left: Relationship, right: Relationship) -> Relationship:
    properties = dict(left.properties)
    properties.update(right.properties)
    return Relationship(
        id=left.id, type=left.type, src=left.src, trg=left.trg, properties=properties
    )


def union(left: PropertyGraph, right: PropertyGraph) -> PropertyGraph:
    """Strict union per Definition 5.4.

    Raises :class:`GraphUnionError` when the operands are inconsistent
    (the paper maps that case to the empty graph; an exception is the
    safer library behaviour, and callers who want ∅ can catch it).
    """
    nodes: Dict[int, Node] = dict(left.nodes)
    for node in right.nodes.values():
        existing = nodes.get(node.id)
        if existing is None:
            nodes[node.id] = node
        else:
            _check_node_consistent(existing, node)
            nodes[node.id] = _combine_node(existing, node)
    relationships: Dict[int, Relationship] = dict(left.relationships)
    for rel in right.relationships.values():
        existing = relationships.get(rel.id)
        if existing is None:
            relationships[rel.id] = rel
        else:
            _check_relationship_consistent(existing, rel)
            relationships[rel.id] = _combine_relationship(existing, rel)
    return PropertyGraph.of(nodes.values(), relationships.values())


def merge(left: PropertyGraph, right: PropertyGraph) -> PropertyGraph:
    """Lenient union: conflicting properties resolve to the right operand.

    Labels/endpoints/type conflicts still raise — those indicate identifier
    reuse for genuinely different entities, which UNA forbids.
    This mirrors ``MERGE``-style ingestion (newer event wins) used when
    loading a stream into a persisted graph (Section 2 / Figure 2).
    """
    nodes: Dict[int, Node] = dict(left.nodes)
    for node in right.nodes.values():
        existing = nodes.get(node.id)
        if existing is None:
            nodes[node.id] = node
        else:
            nodes[node.id] = _combine_node(existing, node)
    relationships: Dict[int, Relationship] = dict(left.relationships)
    for rel in right.relationships.values():
        existing = relationships.get(rel.id)
        if existing is None:
            relationships[rel.id] = rel
        else:
            if (existing.type, existing.src, existing.trg) != (
                rel.type,
                rel.src,
                rel.trg,
            ):
                raise GraphUnionError(
                    f"relationship {rel.id} has conflicting type/endpoints"
                )
            relationships[rel.id] = _combine_relationship(existing, rel)
    return PropertyGraph.of(nodes.values(), relationships.values())


def union_all(graphs: Iterable[PropertyGraph]) -> PropertyGraph:
    """Fold :func:`union` over a graph collection (Definition 5.5 helper)."""
    result = PropertyGraph.empty()
    for graph in graphs:
        result = union(result, graph)
    return result


def consistent(left: PropertyGraph, right: PropertyGraph) -> bool:
    """True when the two graphs can be united under UNA."""
    try:
        union(left, right)
    except GraphUnionError:
        return False
    return True
