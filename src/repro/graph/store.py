"""A mutable property graph store.

The query language of Section 3 is read-only, but the paper's ingestion
path (Section 5.2, Listing 4 — the Neo4j Kafka connector) maps stream
events into a *store* via ``MERGE``-style statements.  :class:`GraphStore`
is that store: a mutable counterpart of :class:`PropertyGraph` supporting
the write clauses of :mod:`repro.cypher.updating`.

``graph()`` freezes the current state into an immutable
:class:`PropertyGraph` (cached until the next mutation), which is what
the read side of the engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Set

from repro.errors import GraphConsistencyError
from repro.graph.model import Node, NodeId, PropertyGraph, Relationship, \
    RelationshipId
from repro.graph.values import NULL


@dataclass
class _NodeState:
    labels: Set[str] = field(default_factory=set)
    properties: Dict[str, Any] = field(default_factory=dict)


@dataclass
class _RelationshipState:
    type: str = ""
    src: NodeId = 0
    trg: NodeId = 0
    properties: Dict[str, Any] = field(default_factory=dict)


#: Sentinel distinguishing "property absent" from any stored value.
_MISSING = object()


class GraphStore:
    """Mutable node/relationship state with Cypher write semantics."""

    #: The snapshot class ``graph()`` freezes into.  Subclasses swap in a
    #: different backend (e.g. ``ColumnarStore`` →
    #: :class:`~repro.graph.columnar.ColumnarGraph`); any class with the
    #: ``empty``/``of``/``patched`` trio works.
    _graph_cls = PropertyGraph

    def __init__(self, graph: Optional[PropertyGraph] = None):
        self._nodes: Dict[NodeId, _NodeState] = {}
        self._relationships: Dict[RelationshipId, _RelationshipState] = {}
        # node id → ids of relationships incident to it (either endpoint),
        # so DETACH DELETE is O(degree) instead of a full relationship scan.
        self._incident: Dict[NodeId, Set[RelationshipId]] = {}
        self._next_node_id = 1
        self._next_rel_id = 1
        self._dirty = True
        self._full_rebuild = True
        self._cached = self._graph_cls.empty()
        # Epoch deltas since the last freeze; insertion-ordered so the
        # incremental freeze applies upserts deterministically.
        self._touched_nodes: Dict[NodeId, None] = {}
        self._touched_rels: Dict[RelationshipId, None] = {}
        self._removed_nodes: Set[NodeId] = set()
        self._removed_rels: Set[RelationshipId] = set()
        if graph is not None:
            self.load(graph)

    # -- loading -------------------------------------------------------------

    def load(self, graph: PropertyGraph) -> None:
        """Bulk-load an immutable graph (existing ids preserved)."""
        for node in graph.nodes.values():
            self._nodes[node.id] = _NodeState(
                labels=set(node.labels), properties=dict(node.properties)
            )
            self._next_node_id = max(self._next_node_id, node.id + 1)
        for rel in graph.relationships.values():
            self._relationships[rel.id] = _RelationshipState(
                type=rel.type, src=rel.src, trg=rel.trg,
                properties=dict(rel.properties),
            )
            self._incident.setdefault(rel.src, set()).add(rel.id)
            self._incident.setdefault(rel.trg, set()).add(rel.id)
            self._next_rel_id = max(self._next_rel_id, rel.id + 1)
        self._dirty = True
        self._full_rebuild = True

    # -- reads ------------------------------------------------------------------

    def _freeze_node(self, node_id: NodeId) -> Node:
        state = self._nodes[node_id]
        return Node(id=node_id, labels=frozenset(state.labels),
                    properties=dict(state.properties))

    def _freeze_relationship(self, rel_id: RelationshipId) -> Relationship:
        state = self._relationships[rel_id]
        return Relationship(id=rel_id, type=state.type, src=state.src,
                            trg=state.trg, properties=dict(state.properties))

    def graph(self) -> PropertyGraph:
        """Freeze the current state (cached until the next mutation).

        When only a small fraction of the store changed since the last
        freeze, the new snapshot is derived from the previous one with
        :meth:`PropertyGraph.patched` — O(delta) index maintenance that
        also carries the previous snapshot's property-value index forward
        instead of discarding it.  Bulk loads and large epochs fall back
        to a full rebuild.
        """
        if not self._dirty:
            return self._cached
        base = self._cached
        touched = (len(self._touched_nodes) + len(self._touched_rels)
                   + len(self._removed_nodes) + len(self._removed_rels))
        live = len(self._nodes) + len(self._relationships)
        if self._full_rebuild or 2 * touched >= max(live, 1):
            self._cached = self._graph_cls.of(
                (self._freeze_node(node_id) for node_id in self._nodes),
                (self._freeze_relationship(rel_id)
                 for rel_id in self._relationships),
            )
        else:
            # Reconcile the epoch delta against the previous snapshot:
            # entities created and destroyed within the epoch appear in
            # neither side of the patch.
            self._cached = base.patched(
                nodes=tuple(
                    self._freeze_node(node_id)
                    for node_id in self._touched_nodes
                    if node_id in self._nodes
                ),
                relationships=tuple(
                    self._freeze_relationship(rel_id)
                    for rel_id in self._touched_rels
                    if rel_id in self._relationships
                ),
                removed_nodes=tuple(
                    node_id for node_id in self._removed_nodes
                    if node_id in base.nodes
                ),
                removed_rels=tuple(
                    rel_id for rel_id in self._removed_rels
                    if rel_id in base.relationships
                ),
            )
        self._dirty = False
        self._full_rebuild = False
        self._touched_nodes.clear()
        self._touched_rels.clear()
        self._removed_nodes.clear()
        self._removed_rels.clear()
        return self._cached

    def _touch_node(self, node_id: NodeId) -> None:
        # Move the node to the end of both the live order and the epoch
        # order: PropertyGraph.patched moves every upsert to the end of
        # the global node order, so keeping the store's own order in
        # lockstep makes the incremental freeze and a forced full
        # rebuild enumerate byte-identically regardless of which path
        # graph() takes.  (Relationships keep their position on upsert,
        # so _touch_relationship intentionally does not move.)
        self._nodes[node_id] = self._nodes.pop(node_id)
        self._touched_nodes.pop(node_id, None)
        self._touched_nodes[node_id] = None
        self._dirty = True

    def _touch_relationship(self, rel_id: RelationshipId) -> None:
        self._touched_rels[rel_id] = None
        self._dirty = True

    @property
    def order(self) -> int:
        return len(self._nodes)

    @property
    def size(self) -> int:
        return len(self._relationships)

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def has_relationship(self, rel_id: RelationshipId) -> bool:
        return rel_id in self._relationships

    # -- creation -----------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] = (),
        properties: Optional[Dict[str, Any]] = None,
    ) -> Node:
        node_id = self._next_node_id
        self._next_node_id += 1
        # Materialize ``labels`` exactly once: it may be a generator, and
        # consuming it twice would store the labels but return a Node
        # without them.
        label_set = frozenset(labels)
        clean = {k: v for k, v in (properties or {}).items() if v is not NULL}
        self._nodes[node_id] = _NodeState(
            labels=set(label_set), properties=clean
        )
        self._touch_node(node_id)
        return Node(id=node_id, labels=label_set, properties=clean)

    def create_relationship(
        self,
        src: NodeId,
        rel_type: str,
        trg: NodeId,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Relationship:
        if src not in self._nodes:
            raise GraphConsistencyError(f"unknown source node {src}")
        if trg not in self._nodes:
            raise GraphConsistencyError(f"unknown target node {trg}")
        rel_id = self._next_rel_id
        self._next_rel_id += 1
        clean = {k: v for k, v in (properties or {}).items() if v is not NULL}
        self._relationships[rel_id] = _RelationshipState(
            type=rel_type, src=src, trg=trg, properties=clean
        )
        self._incident.setdefault(src, set()).add(rel_id)
        self._incident.setdefault(trg, set()).add(rel_id)
        self._touch_relationship(rel_id)
        return Relationship(id=rel_id, type=rel_type, src=src, trg=trg,
                            properties=clean)

    # -- updates -------------------------------------------------------------------

    def _node_state(self, node_id: NodeId) -> _NodeState:
        state = self._nodes.get(node_id)
        if state is None:
            raise GraphConsistencyError(f"unknown node {node_id}")
        return state

    def _rel_state(self, rel_id: RelationshipId) -> _RelationshipState:
        state = self._relationships.get(rel_id)
        if state is None:
            raise GraphConsistencyError(f"unknown relationship {rel_id}")
        return state

    def set_property(self, entity: Any, key: str, value: Any) -> None:
        """SET e.key = value; setting null removes the property (Cypher).

        A write that leaves the stored state unchanged — rewriting an
        identical value, or removing an absent key — is a no-op: it does
        not dirty the cached snapshot and does not enter the epoch
        delta, so ``graph()`` keeps returning the same cached object.
        Identity is type-exact (``1`` does not match ``1.0`` or
        ``true``), and ``NaN`` never matches, so every observable
        rewrite still invalidates.
        """
        if isinstance(entity, Node):
            properties = self._node_state(entity.id).properties
            touch = self._touch_node
        elif isinstance(entity, Relationship):
            properties = self._rel_state(entity.id).properties
            touch = self._touch_relationship
        else:
            raise GraphConsistencyError(
                f"cannot set properties on {entity!r}"
            )
        if value is NULL:
            if key not in properties:
                return
            del properties[key]
        else:
            old = properties.get(key, _MISSING)
            if old is value or (
                old is not _MISSING
                and type(old) is type(value)
                and old == value
            ):
                return
            properties[key] = value
        touch(entity.id)

    def set_properties_from_map(
        self, entity: Any, mapping: Dict[str, Any], replace: bool
    ) -> None:
        """SET e = map (replace) or SET e += map (additive)."""
        if isinstance(entity, Node):
            properties = self._node_state(entity.id).properties
            self._touch_node(entity.id)
        elif isinstance(entity, Relationship):
            properties = self._rel_state(entity.id).properties
            self._touch_relationship(entity.id)
        else:
            raise GraphConsistencyError(
                f"cannot set properties on {entity!r}"
            )
        if replace:
            properties.clear()
        for key, value in mapping.items():
            if value is NULL:
                properties.pop(key, None)
            else:
                properties[key] = value
        self._dirty = True

    def add_labels(self, node: Node, labels: Iterable[str]) -> None:
        self._node_state(node.id).labels.update(labels)
        self._touch_node(node.id)

    def remove_labels(self, node: Node, labels: Iterable[str]) -> None:
        self._node_state(node.id).labels.difference_update(labels)
        self._touch_node(node.id)

    def remove_property(self, entity: Any, key: str) -> None:
        self.set_property(entity, key, NULL)

    # -- deletion -------------------------------------------------------------------

    def _drop_relationship(self, rel_id: RelationshipId) -> None:
        state = self._relationships.pop(rel_id)
        for endpoint in (state.src, state.trg):
            incident = self._incident.get(endpoint)
            if incident is not None:
                incident.discard(rel_id)
                if not incident:
                    del self._incident[endpoint]
        self._touched_rels.pop(rel_id, None)
        self._removed_rels.add(rel_id)

    def delete_relationship(self, rel_id: RelationshipId) -> None:
        if rel_id in self._relationships:
            self._drop_relationship(rel_id)
            self._dirty = True

    def delete_node(self, node_id: NodeId, detach: bool = False) -> None:
        """DELETE / DETACH DELETE a node.

        Incident relationships come from the store's incident-rel index,
        so a detach costs O(degree) — not a scan of every relationship,
        which is quadratic under churny streams.
        """
        if node_id not in self._nodes:
            return
        incident = self._incident.get(node_id, ())
        if incident and not detach:
            raise GraphConsistencyError(
                f"cannot delete node {node_id}: it still has "
                f"{len(incident)} relationship(s); use DETACH DELETE"
            )
        for rel_id in list(incident):
            self._drop_relationship(rel_id)
        del self._nodes[node_id]
        self._touched_nodes.pop(node_id, None)
        self._removed_nodes.add(node_id)
        self._dirty = True
