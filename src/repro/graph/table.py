"""Records and tables with bag semantics (Definition 3.2).

A *record* is a partial function from names to values.  A *table* with
fields ``A`` is a **bag** of records whose domain is exactly ``A``.  Bags
support union (additive) and bag difference — the latter is what Seraph's
``ON ENTERING`` report policy is built from.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import SchemaMismatchError
from repro.graph.values import NULL, hashable


class Record(Mapping[str, Any]):
    """An immutable record (named tuple-like partial function).

    Field order is irrelevant for equality, per Definition 3.2.
    """

    __slots__ = ("_fields", "_key")

    def __init__(self, fields: Optional[Mapping[str, Any]] = None, **kwargs: Any):
        data: Dict[str, Any] = dict(fields or {})
        data.update(kwargs)
        object.__setattr__(self, "_fields", data)
        object.__setattr__(self, "_key", None)

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self._fields[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    # -- record operations ----------------------------------------------------

    @property
    def domain(self) -> FrozenSet[str]:
        """dom(u): the set of names the record assigns."""
        return frozenset(self._fields)

    def get(self, name: str, default: Any = NULL) -> Any:
        """Field access; absent names yield Cypher ``null`` by default."""
        return self._fields.get(name, default)

    def merged(self, other: "Record") -> "Record":
        """``u · u'``: extend this record with the fields of ``other``.

        Overlapping names must agree (they do in Cypher's semantics since
        ``u'`` only binds names outside ``dom(u)``; we enforce it).
        """
        for name in self._fields.keys() & other._fields.keys():
            if hashable(self._fields[name]) != hashable(other._fields[name]):
                raise SchemaMismatchError(
                    f"conflicting assignment for field {name!r} when merging records"
                )
        combined = dict(self._fields)
        combined.update(other._fields)
        return Record(combined)

    def project(self, names: Iterable[str]) -> "Record":
        """Keep only ``names``; missing names become ``null``."""
        return Record({name: self._fields.get(name, NULL) for name in names})

    def without(self, names: Iterable[str]) -> "Record":
        dropped = set(names)
        return Record({k: v for k, v in self._fields.items() if k not in dropped})

    def with_field(self, name: str, value: Any) -> "Record":
        combined = dict(self._fields)
        combined[name] = value
        return Record(combined)

    def key(self) -> Tuple:
        """A hashable deep-frozen form for bag counting."""
        if self._key is None:
            frozen = tuple(
                sorted((name, hashable(value)) for name, value in self._fields.items())
            )
            object.__setattr__(self, "_key", frozen)
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Record) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {value!r}" for name, value in self._fields.items())
        return f"({inner})"


#: The empty record ().
EMPTY_RECORD = Record()


class Table:
    """A bag of records sharing one field set (Definition 3.2).

    Internally a list (preserving production order, which ``ORDER BY``
    relies on) plus a counter keyed by deep-frozen record keys for bag
    operations.
    """

    __slots__ = ("_records", "_fields")

    def __init__(
        self,
        records: Iterable[Record] = (),
        fields: Optional[Iterable[str]] = None,
    ):
        self._records: List[Record] = list(records)
        if fields is not None:
            self._fields: FrozenSet[str] = frozenset(fields)
        elif self._records:
            self._fields = self._records[0].domain
        else:
            self._fields = frozenset()
        for record in self._records:
            if record.domain != self._fields:
                raise SchemaMismatchError(
                    f"record domain {sorted(record.domain)} does not match table "
                    f"fields {sorted(self._fields)}"
                )

    @staticmethod
    def unit() -> "Table":
        """T(): the table containing the single empty record — the seed of
        query evaluation per ``output(Q, G) = [[Q]]_G(T())``."""
        return Table([EMPTY_RECORD])

    @staticmethod
    def empty(fields: Iterable[str] = ()) -> "Table":
        return Table([], fields=fields)

    # -- basic accessors ------------------------------------------------------

    @property
    def fields(self) -> FrozenSet[str]:
        return self._fields

    @property
    def records(self) -> Tuple[Record, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def counter(self) -> Counter:
        """Multiplicity of each record (bag view)."""
        return Counter(record.key() for record in self._records)

    # -- bag algebra ------------------------------------------------------------

    def bag_union(self, other: "Table") -> "Table":
        """Additive bag union (UNION ALL)."""
        self._check_compatible(other)
        return Table(
            list(self._records) + list(other._records),
            fields=self._fields or other._fields,
        )

    def bag_difference(self, other: "Table") -> "Table":
        """Bag difference: multiplicities subtract, floored at zero.

        This is the primitive behind ``ON ENTERING`` (Definition of report
        policies): new results = current ∖ previous.
        """
        self._check_compatible(other)
        remaining = other.counter()
        kept: List[Record] = []
        for record in self._records:
            key = record.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                kept.append(record)
        return Table(kept, fields=self._fields)

    def distinct(self) -> "Table":
        seen = set()
        kept = []
        for record in self._records:
            key = record.key()
            if key not in seen:
                seen.add(key)
                kept.append(record)
        return Table(kept, fields=self._fields)

    def project(self, names: Iterable[str]) -> "Table":
        names = list(names)
        return Table([record.project(names) for record in self._records],
                     fields=names)

    def filter(self, predicate: Callable[[Record], bool]) -> "Table":
        return Table(
            [record for record in self._records if predicate(record)],
            fields=self._fields,
        )

    def sorted_by(self, key: Callable[[Record], Any], reverse: bool = False) -> "Table":
        return Table(
            sorted(self._records, key=key, reverse=reverse), fields=self._fields
        )

    def _check_compatible(self, other: "Table") -> None:
        if self._records and other._records and self._fields != other._fields:
            raise SchemaMismatchError(
                f"incompatible table fields {sorted(self._fields)} vs "
                f"{sorted(other._fields)}"
            )

    # -- equality (bag equality: order-insensitive) -------------------------------

    def bag_equals(self, other: "Table") -> bool:
        return self._fields == other._fields and self.counter() == other.counter()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Table) and self.bag_equals(other)

    def __hash__(self) -> int:
        return hash((self._fields, frozenset(self.counter().items())))

    def __repr__(self) -> str:
        return f"Table(fields={sorted(self._fields)}, rows={len(self._records)})"

    # -- rendering ---------------------------------------------------------------

    def render(self, columns: Optional[List[str]] = None) -> str:
        """ASCII rendering in the style of the paper's result tables."""
        columns = columns or sorted(self._fields)
        header = columns
        rows = [[_render_value(record.get(name)) for name in columns]
                for record in self._records]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows)) if rows
            else len(header[i])
            for i in range(len(columns))
        ]
        line = "+".join("-" * (width + 2) for width in widths)
        out = [
            " | ".join(header[i].ljust(widths[i]) for i in range(len(columns))),
            line,
        ]
        for row in rows:
            out.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
        return "\n".join(out)


def _render_value(value: Any) -> str:
    if value is NULL:
        return "null"
    if isinstance(value, list):
        return "[" + ",".join(_render_value(item) for item in value) + "]"
    return str(value)
