"""Fluent construction of property graphs.

:class:`GraphBuilder` assigns identifiers automatically (or accepts
explicit ones, which the streaming examples need so that the same station
appearing in two events unifies under UNA).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from repro.errors import GraphConsistencyError
from repro.graph.model import Node, NodeId, PropertyGraph, Relationship, RelationshipId


class GraphBuilder:
    """Accumulates nodes and relationships, then freezes a PropertyGraph.

    >>> builder = GraphBuilder()
    >>> alice = builder.add_node(labels=["Person"], properties={"name": "Alice"})
    >>> bob = builder.add_node(labels=["Person"], properties={"name": "Bob"})
    >>> _ = builder.add_relationship(alice, "KNOWS", bob)
    >>> builder.build().size
    1
    """

    def __init__(self, id_offset: int = 0):
        self._nodes: Dict[NodeId, Node] = {}
        self._relationships: Dict[RelationshipId, Relationship] = {}
        self._next_node_id = id_offset + 1
        self._next_rel_id = id_offset + 1

    def add_node(
        self,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
        node_id: Optional[NodeId] = None,
    ) -> NodeId:
        """Add a node and return its identifier.

        Re-adding an identical node is a no-op (convenient when events
        repeat entities); re-adding a conflicting one raises.
        """
        if node_id is None:
            while self._next_node_id in self._nodes:
                self._next_node_id += 1
            node_id = self._next_node_id
            self._next_node_id += 1
        node = Node(id=node_id, labels=frozenset(labels), properties=properties or {})
        existing = self._nodes.get(node_id)
        if existing is not None and (
            existing.labels != node.labels
            or dict(existing.properties) != dict(node.properties)
        ):
            raise GraphConsistencyError(f"conflicting redefinition of node {node_id}")
        self._nodes[node_id] = node
        return node_id

    def add_relationship(
        self,
        src: NodeId,
        rel_type: str,
        trg: NodeId,
        properties: Optional[Mapping[str, Any]] = None,
        rel_id: Optional[RelationshipId] = None,
    ) -> RelationshipId:
        """Add a relationship ``(src)-[:rel_type]->(trg)`` and return its id."""
        if src not in self._nodes:
            raise GraphConsistencyError(f"unknown source node {src}")
        if trg not in self._nodes:
            raise GraphConsistencyError(f"unknown target node {trg}")
        if rel_id is None:
            while self._next_rel_id in self._relationships:
                self._next_rel_id += 1
            rel_id = self._next_rel_id
            self._next_rel_id += 1
        rel = Relationship(
            id=rel_id, type=rel_type, src=src, trg=trg, properties=properties or {}
        )
        existing = self._relationships.get(rel_id)
        if existing is not None and (
            (existing.type, existing.src, existing.trg)
            != (rel.type, rel.src, rel.trg)
            or dict(existing.properties) != dict(rel.properties)
        ):
            raise GraphConsistencyError(
                f"conflicting redefinition of relationship {rel_id}"
            )
        self._relationships[rel_id] = rel
        return rel_id

    def build(self) -> PropertyGraph:
        """Freeze the accumulated elements into an immutable graph."""
        return PropertyGraph.of(self._nodes.values(), self._relationships.values())
