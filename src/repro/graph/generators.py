"""Seeded random generators for graphs and graph streams.

Used by property-based tests and by the scale benchmarks.  Everything is
driven by an explicit :class:`random.Random` seed so benchmark inputs are
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph

DEFAULT_LABELS = ("Person", "Station", "Device", "Account")
DEFAULT_TYPES = ("KNOWS", "SENT", "AT", "OWNS")


def random_graph(
    rng: random.Random,
    num_nodes: int = 10,
    num_relationships: int = 15,
    labels: Sequence[str] = DEFAULT_LABELS,
    types: Sequence[str] = DEFAULT_TYPES,
    id_offset: int = 0,
) -> PropertyGraph:
    """A random property graph with ``num_nodes`` nodes.

    Nodes get 0-2 labels and small integer/string properties; endpoints of
    relationships are uniform over the nodes.
    """
    if num_nodes <= 0:
        return PropertyGraph.empty()
    builder = GraphBuilder(id_offset=id_offset)
    node_ids = []
    for _ in range(num_nodes):
        chosen = rng.sample(labels, k=rng.randint(0, min(2, len(labels))))
        properties = {
            "weight": rng.randint(0, 100),
            "name": f"n{rng.randint(0, 999)}",
        }
        node_ids.append(builder.add_node(labels=chosen, properties=properties))
    for _ in range(num_relationships):
        src = rng.choice(node_ids)
        trg = rng.choice(node_ids)
        builder.add_relationship(
            src,
            rng.choice(types),
            trg,
            properties={"ts": rng.randint(0, 10_000), "amount": rng.randint(1, 50)},
        )
    return builder.build()


def random_stream(
    rng: random.Random,
    num_events: int = 20,
    period: int = 300,
    start: int = 0,
    nodes_per_event: int = 5,
    relationships_per_event: int = 6,
    shared_node_pool: int = 0,
    labels: Sequence[str] = DEFAULT_LABELS,
    types: Sequence[str] = DEFAULT_TYPES,
) -> List["StreamElement"]:
    """A random property graph stream of ``num_events`` timestamped graphs.

    When ``shared_node_pool > 0`` the events draw node identifiers from a
    common pool so consecutive snapshot graphs genuinely unify entities
    (the interesting case for Definition 5.4/5.5).
    """
    from repro.stream.stream import StreamElement

    pool_nodes: Optional[List[int]] = None
    if shared_node_pool > 0:
        pool_nodes = list(range(1, shared_node_pool + 1))
        pool_labels = {
            node_id: frozenset(
                rng.sample(labels, k=rng.randint(0, min(2, len(labels))))
            )
            for node_id in pool_nodes
        }
        pool_properties = {
            node_id: {"weight": rng.randint(0, 100)} for node_id in pool_nodes
        }
    elements = []
    next_rel_id = 1
    for index in range(num_events):
        builder = GraphBuilder(id_offset=shared_node_pool + index * nodes_per_event)
        if pool_nodes is not None:
            chosen = rng.sample(
                pool_nodes, k=min(nodes_per_event, len(pool_nodes))
            )
            event_nodes = [
                builder.add_node(
                    labels=pool_labels[node_id],
                    properties=pool_properties[node_id],
                    node_id=node_id,
                )
                for node_id in chosen
            ]
        else:
            event_nodes = [
                builder.add_node(
                    labels=rng.sample(labels, k=rng.randint(0, min(2, len(labels)))),
                    properties={"weight": rng.randint(0, 100)},
                )
                for _ in range(nodes_per_event)
            ]
        for _ in range(relationships_per_event):
            if len(event_nodes) < 1:
                break
            builder.add_relationship(
                rng.choice(event_nodes),
                rng.choice(types),
                rng.choice(event_nodes),
                properties={"ts": start + index * period},
                rel_id=next_rel_id,
            )
            next_rel_id += 1
        elements.append(
            StreamElement(graph=builder.build(), instant=start + index * period)
        )
    return elements
