"""JSON (de)serialization for graphs, streams, and tables.

The format is a stable, line-oriented JSON document layout so streams can
be persisted and replayed (the repository's stand-in for the paper's Kafka
topics).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import GraphError
from repro.graph.model import Node, PropertyGraph, Relationship


def node_to_dict(node: Node) -> Dict[str, Any]:
    return {
        "id": node.id,
        "labels": sorted(node.labels),
        "properties": dict(node.properties),
    }


def node_from_dict(data: Dict[str, Any]) -> Node:
    return Node(
        id=int(data["id"]),
        labels=frozenset(data.get("labels", ())),
        properties=data.get("properties", {}),
    )


def relationship_to_dict(rel: Relationship) -> Dict[str, Any]:
    return {
        "id": rel.id,
        "type": rel.type,
        "src": rel.src,
        "trg": rel.trg,
        "properties": dict(rel.properties),
    }


def relationship_from_dict(data: Dict[str, Any]) -> Relationship:
    return Relationship(
        id=int(data["id"]),
        type=data["type"],
        src=int(data["src"]),
        trg=int(data["trg"]),
        properties=data.get("properties", {}),
    )


def graph_to_dict(graph: PropertyGraph) -> Dict[str, Any]:
    return {
        "nodes": [node_to_dict(node) for node in graph.nodes.values()],
        "relationships": [
            relationship_to_dict(rel) for rel in graph.relationships.values()
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> PropertyGraph:
    try:
        nodes = [node_from_dict(item) for item in data.get("nodes", ())]
        relationships = [
            relationship_from_dict(item) for item in data.get("relationships", ())
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph document: {exc}") from exc
    return PropertyGraph.of(nodes, relationships)


def graph_to_json(graph: PropertyGraph, indent: int | None = None) -> str:
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> PropertyGraph:
    return graph_from_dict(json.loads(text))


def stream_to_jsonl(elements: List[Any]) -> str:
    """Serialize ``StreamElement``-like pairs to JSON-lines."""
    lines = []
    for element in elements:
        lines.append(
            json.dumps(
                {"instant": element.instant, "graph": graph_to_dict(element.graph)},
                sort_keys=True,
            )
        )
    return "\n".join(lines)


def stream_from_jsonl(text: str) -> List[Any]:
    """Parse JSON-lines into ``StreamElement`` objects."""
    from repro.stream.stream import StreamElement

    elements = []
    for line in text.splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        elements.append(
            StreamElement(graph=graph_from_dict(data["graph"]),
                          instant=int(data["instant"]))
        )
    return elements
