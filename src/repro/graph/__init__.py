"""Property graph substrate: values, graphs, tables, union, IO."""

from repro.graph.builder import GraphBuilder
from repro.graph.columnar import (
    GRAPH_BACKENDS,
    ColumnarGraph,
    ColumnarStore,
    resolve_backend,
    resolve_backend_name,
)
from repro.graph.model import Node, Path, PropertyGraph, Relationship
from repro.graph.store import GraphStore
from repro.graph.table import EMPTY_RECORD, Record, Table
from repro.graph.union import consistent, merge, union, union_all
from repro.graph.values import NULL, Ternary

__all__ = [
    "EMPTY_RECORD",
    "GRAPH_BACKENDS",
    "ColumnarGraph",
    "ColumnarStore",
    "GraphBuilder",
    "GraphStore",
    "NULL",
    "Node",
    "Path",
    "PropertyGraph",
    "Record",
    "Relationship",
    "Table",
    "Ternary",
    "consistent",
    "merge",
    "resolve_backend",
    "resolve_backend_name",
    "union",
    "union_all",
]
