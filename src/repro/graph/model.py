"""The property graph data model (Definition 3.1) and paths.

A property graph is a tuple ``Γ = (N, R, src, trg, ι, λ, κ)``:

* ``N`` — finite set of node identifiers,
* ``R`` — finite set of relationship identifiers,
* ``src, trg : R → N`` — endpoint functions,
* ``ι : (N ∪ R) × 𝒦 ⇀ 𝒱`` — partial property assignment,
* ``λ : N → 2^ℒ`` — node label sets,
* ``κ : R → 𝒯`` — relationship types.

We realize nodes and relationships as immutable dataclasses carrying their
own labels/type/properties, and :class:`PropertyGraph` as an immutable
container indexed by identifier with adjacency indexes for matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import GraphConsistencyError
from repro.graph.values import NULL, property_index_key

NodeId = int
RelationshipId = int

_EMPTY_MAP: Mapping[str, Any] = MappingProxyType({})


def _freeze_properties(properties: Optional[Mapping[str, Any]]) -> Mapping[str, Any]:
    if not properties:
        return _EMPTY_MAP
    return MappingProxyType(dict(properties))


def _prop_entries(node: "Node") -> Iterator[Tuple[Tuple[str, str], tuple]]:
    """All ((label, property-key), value-bucket-key) entries of a node."""
    for label in node.labels:
        for key, value in node.properties.items():
            value_key = property_index_key(value)
            if value_key is not None:
                yield (label, key), value_key


def _same_node(left: "Node", right: "Node") -> bool:
    """Full structural comparison (id, labels, properties)."""
    return (
        left.id == right.id
        and left.labels == right.labels
        and dict(left.properties) == dict(right.properties)
    )


def _same_relationship(left: "Relationship", right: "Relationship") -> bool:
    """Full structural comparison (id, type, endpoints, properties)."""
    return (
        left.id == right.id
        and left.type == right.type
        and (left.src, left.trg) == (right.src, right.trg)
        and dict(left.properties) == dict(right.properties)
    )


@dataclass(frozen=True)
class Node:
    """A node of a property graph: identifier, label set, and properties."""

    id: NodeId
    labels: FrozenSet[str] = frozenset()
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "labels", frozenset(self.labels))
        object.__setattr__(self, "properties", _freeze_properties(self.properties))

    def property(self, key: str) -> Any:
        """Property lookup; missing keys yield Cypher ``null``."""
        return self.properties.get(key, NULL)

    def has_label(self, label: str) -> bool:
        return label in self.labels

    def __reduce__(self):
        # Properties are mappingproxy views (not picklable); rebuild from
        # plain dicts so nodes can cross process boundaries.
        return (Node, (self.id, self.labels, dict(self.properties)))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("node", self.id))

    def __repr__(self) -> str:
        labels = "".join(f":{label}" for label in sorted(self.labels))
        return f"(n{self.id}{labels} {dict(self.properties)!r})"


@dataclass(frozen=True)
class Relationship:
    """A relationship: identifier, type, endpoints, and properties."""

    id: RelationshipId
    type: str
    src: NodeId
    trg: NodeId
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "properties", _freeze_properties(self.properties))

    def property(self, key: str) -> Any:
        """Property lookup; missing keys yield Cypher ``null``."""
        return self.properties.get(key, NULL)

    def other_end(self, node_id: NodeId) -> NodeId:
        """The endpoint opposite to ``node_id`` (for undirected traversal)."""
        if node_id == self.src:
            return self.trg
        if node_id == self.trg:
            return self.src
        raise GraphConsistencyError(
            f"node {node_id} is not an endpoint of relationship {self.id}"
        )

    def __reduce__(self):
        return (
            Relationship,
            (self.id, self.type, self.src, self.trg, dict(self.properties)),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relationship) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("rel", self.id))

    def __repr__(self) -> str:
        return (
            f"(n{self.src})-[r{self.id}:{self.type} "
            f"{dict(self.properties)!r}]->(n{self.trg})"
        )


@dataclass(frozen=True)
class PropertyGraph:
    """An immutable property graph per Definition 3.1.

    Construct via :func:`PropertyGraph.of` or :class:`repro.graph.builder.
    GraphBuilder`.  Adjacency indexes are built eagerly so pattern matching
    is O(degree) per expansion.
    """

    nodes: Mapping[NodeId, Node] = field(default_factory=dict)
    relationships: Mapping[RelationshipId, Relationship] = field(default_factory=dict)
    _out: Mapping[NodeId, Tuple[RelationshipId, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _in: Mapping[NodeId, Tuple[RelationshipId, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _by_label: Mapping[str, Tuple[NodeId, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _by_type: Mapping[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Lazily-built (label, property-key) → {value bucket → node ids}
    #: equality index.  ``None`` until first use; :meth:`patched`
    #: maintains a materialized parent index in O(touched).
    _prop_index: Optional[
        Dict[Tuple[str, str], Dict[tuple, Tuple[NodeId, ...]]]
    ] = field(default=None, repr=False, compare=False)

    @staticmethod
    def of(
        nodes: Iterable[Node] = (),
        relationships: Iterable[Relationship] = (),
    ) -> "PropertyGraph":
        """Build a graph from node/relationship collections, validating it."""
        node_map: Dict[NodeId, Node] = {}
        for node in nodes:
            existing = node_map.get(node.id)
            if existing is not None and not _same_node(existing, node):
                raise GraphConsistencyError(f"duplicate node id {node.id}")
            node_map[node.id] = node
        rel_map: Dict[RelationshipId, Relationship] = {}
        out_adj: Dict[NodeId, list] = {nid: [] for nid in node_map}
        in_adj: Dict[NodeId, list] = {nid: [] for nid in node_map}
        for rel in relationships:
            if rel.id in rel_map:
                raise GraphConsistencyError(f"duplicate relationship id {rel.id}")
            if rel.src not in node_map:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling source {rel.src}"
                )
            if rel.trg not in node_map:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling target {rel.trg}"
                )
            rel_map[rel.id] = rel
            out_adj[rel.src].append(rel.id)
            in_adj[rel.trg].append(rel.id)
        by_label: Dict[str, list] = {}
        for node in node_map.values():
            for label in node.labels:
                by_label.setdefault(label, []).append(node.id)
        by_type: Dict[str, int] = {}
        for rel in rel_map.values():
            by_type[rel.type] = by_type.get(rel.type, 0) + 1
        return PropertyGraph(
            nodes=MappingProxyType(node_map),
            relationships=MappingProxyType(rel_map),
            _out=MappingProxyType({k: tuple(v) for k, v in out_adj.items()}),
            _in=MappingProxyType({k: tuple(v) for k, v in in_adj.items()}),
            _by_label=MappingProxyType(
                {label: tuple(ids) for label, ids in by_label.items()}
            ),
            _by_type=MappingProxyType(by_type),
        )

    def patched(
        self,
        nodes: Iterable[Node] = (),
        relationships: Iterable[Relationship] = (),
        removed_nodes: Iterable[NodeId] = (),
        removed_rels: Iterable[RelationshipId] = (),
    ) -> "PropertyGraph":
        """A new graph with the given upserts/removals applied.

        Index maintenance is proportional to the touched entities (plus
        flat dict copies), not to the whole graph — the carrier of the
        snapshot maintainer's O(delta) evaluation-to-evaluation step.
        Validation matches :meth:`of` for everything touched: removals
        must leave no dangling endpoints, upserted relationships must
        reference present nodes.

        Ordering invariant: every upserted node moves to the *end* of
        ``nodes`` and of each label/property bucket it belongs to, in
        upsert order.  All enumeration orders (node scans, label scans,
        index seeks) therefore agree on a single global node order, and
        a pickled/rebuilt copy (:meth:`__reduce__` re-runs :meth:`of`
        over ``nodes`` order) reproduces the same bucket orders — what
        makes physical index seeks byte-identical to interpreted scans,
        in-process and across worker boundaries.
        """
        node_map: Dict[NodeId, Node] = dict(self.nodes)
        rel_map: Dict[RelationshipId, Relationship] = dict(self.relationships)
        out_adj: Dict[NodeId, Tuple[RelationshipId, ...]] = dict(self._out)
        in_adj: Dict[NodeId, Tuple[RelationshipId, ...]] = dict(self._in)
        by_label: Dict[str, Tuple[NodeId, ...]] = dict(self._by_label)
        by_type: Dict[str, int] = dict(self._by_type)
        # Maintain the property index only when the parent has one
        # materialized; otherwise stay lazy (zero cost for workloads
        # that never seek).
        prop_index: Optional[Dict[Tuple[str, str], Dict[tuple, Tuple[NodeId, ...]]]]
        prop_index = dict(self._prop_index) if self._prop_index is not None else None
        prop_copied: set = set()

        def prop_buckets_for(
            label_key: Tuple[str, str]
        ) -> Dict[tuple, Tuple[NodeId, ...]]:
            assert prop_index is not None
            buckets = prop_index.get(label_key)
            if buckets is None:
                buckets = prop_index[label_key] = {}
                prop_copied.add(label_key)
            elif label_key not in prop_copied:
                buckets = prop_index[label_key] = dict(buckets)
                prop_copied.add(label_key)
            return buckets

        def prop_unindex(node: Node) -> None:
            for label_key, value_key in _prop_entries(node):
                if label_key not in prop_index:  # type: ignore[operator]
                    continue
                buckets = prop_buckets_for(label_key)
                ids = buckets.get(value_key)
                if ids is None:
                    continue
                stripped = tuple(i for i in ids if i != node.id)
                if stripped:
                    buckets[value_key] = stripped
                else:
                    del buckets[value_key]
                    if not buckets:
                        del prop_index[label_key]  # type: ignore[union-attr]

        def prop_indexed(node: Node) -> None:
            for label_key, value_key in _prop_entries(node):
                buckets = prop_buckets_for(label_key)
                buckets[value_key] = buckets.get(value_key, ()) + (node.id,)

        def unlabel(node_id: NodeId, label: str) -> None:
            ids = tuple(i for i in by_label[label] if i != node_id)
            if ids:
                by_label[label] = ids
            else:
                del by_label[label]

        for rel_id in removed_rels:
            rel = rel_map.pop(rel_id, None)
            if rel is None:
                raise GraphConsistencyError(
                    f"cannot remove unknown relationship {rel_id}"
                )
            out_adj[rel.src] = tuple(
                i for i in out_adj[rel.src] if i != rel_id
            )
            in_adj[rel.trg] = tuple(i for i in in_adj[rel.trg] if i != rel_id)
            count = by_type.get(rel.type, 0) - 1
            if count > 0:
                by_type[rel.type] = count
            else:
                by_type.pop(rel.type, None)
        for node_id in removed_nodes:
            node = node_map.pop(node_id, None)
            if node is None:
                raise GraphConsistencyError(
                    f"cannot remove unknown node {node_id}"
                )
            if out_adj.get(node_id) or in_adj.get(node_id):
                raise GraphConsistencyError(
                    f"removing node {node_id} would dangle its relationships"
                )
            out_adj.pop(node_id, None)
            in_adj.pop(node_id, None)
            for label in node.labels:
                unlabel(node_id, label)
            if prop_index is not None:
                prop_unindex(node)
        # Upserts move to the end of every enumeration order, batched so
        # each affected bucket is rewritten once per call, not per node.
        upserts: Dict[NodeId, Node] = {}
        for node in nodes:
            upserts[node.id] = node  # dedupe: last upsert of an id wins
        if upserts:
            affected_labels: set = set()
            olds: Dict[NodeId, Optional[Node]] = {}
            for node_id, node in upserts.items():
                old = node_map.get(node_id)
                olds[node_id] = old
                if old is not None:
                    affected_labels.update(old.labels)
                    del node_map[node_id]  # move to end of node order
                else:
                    out_adj.setdefault(node_id, ())
                    in_adj.setdefault(node_id, ())
                affected_labels.update(node.labels)
                node_map[node_id] = node
            moved = set(upserts)
            for label in affected_labels:
                ids = by_label.get(label)
                if ids:
                    stripped = tuple(i for i in ids if i not in moved)
                    if stripped:
                        by_label[label] = stripped
                    else:
                        del by_label[label]
            for node_id, node in upserts.items():
                for label in node.labels:
                    by_label[label] = by_label.get(label, ()) + (node_id,)
            if prop_index is not None:
                for node_id, old in olds.items():
                    if old is not None:
                        prop_unindex(old)
                for node in upserts.values():
                    prop_indexed(node)
        for rel in relationships:
            if rel.src not in node_map:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling source {rel.src}"
                )
            if rel.trg not in node_map:
                raise GraphConsistencyError(
                    f"relationship {rel.id} has dangling target {rel.trg}"
                )
            old = rel_map.get(rel.id)
            rel_map[rel.id] = rel
            if old is None:
                by_type[rel.type] = by_type.get(rel.type, 0) + 1
            elif old.type != rel.type:
                count = by_type.get(old.type, 0) - 1
                if count > 0:
                    by_type[old.type] = count
                else:
                    by_type.pop(old.type, None)
                by_type[rel.type] = by_type.get(rel.type, 0) + 1
            if old is not None and (old.src, old.trg) == (rel.src, rel.trg):
                continue  # endpoints unchanged: adjacency already right
            if old is not None:
                out_adj[old.src] = tuple(
                    i for i in out_adj[old.src] if i != rel.id
                )
                in_adj[old.trg] = tuple(
                    i for i in in_adj[old.trg] if i != rel.id
                )
            out_adj[rel.src] = out_adj[rel.src] + (rel.id,)
            in_adj[rel.trg] = in_adj[rel.trg] + (rel.id,)
        return PropertyGraph(
            nodes=MappingProxyType(node_map),
            relationships=MappingProxyType(rel_map),
            _out=MappingProxyType(out_adj),
            _in=MappingProxyType(in_adj),
            _by_label=MappingProxyType(by_label),
            _by_type=MappingProxyType(by_type),
            _prop_index=prop_index,
        )

    @staticmethod
    def empty() -> "PropertyGraph":
        return _EMPTY_GRAPH

    # -- accessors ---------------------------------------------------------

    def node(self, node_id: NodeId) -> Node:
        return self.nodes[node_id]

    def relationship(self, rel_id: RelationshipId) -> Relationship:
        return self.relationships[rel_id]

    def outgoing(self, node_id: NodeId) -> Iterator[Relationship]:
        """Relationships with ``src = node_id``."""
        for rel_id in self._out.get(node_id, ()):
            yield self.relationships[rel_id]

    def incoming(self, node_id: NodeId) -> Iterator[Relationship]:
        """Relationships with ``trg = node_id``."""
        for rel_id in self._in.get(node_id, ()):
            yield self.relationships[rel_id]

    def incident(self, node_id: NodeId) -> Iterator[Relationship]:
        """All relationships touching ``node_id`` (undirected view).

        Every relationship — self-loops included — is yielded exactly
        once, deduplicated by id.  A self-loop sits in both the outgoing
        and the incoming index, but Cypher's undirected traversal
        ``(a)-[r]-(b)`` visits it as a *single* candidate, producing one
        match, not one per direction.  Direction-specific patterns go
        through :meth:`outgoing`/:meth:`incoming` directly, where a
        self-loop contributes one match for ``()-[]->()`` and one for
        ``()<-[]-()``.
        """
        seen = set()
        for rel in self.outgoing(node_id):
            seen.add(rel.id)
            yield rel
        for rel in self.incoming(node_id):
            if rel.id not in seen:
                yield rel

    def nodes_with_labels(self, labels: Iterable[str]) -> Iterator[Node]:
        """All nodes whose label set includes every label in ``labels``.

        Served from the per-label index: iterate the rarest label's
        candidates and check the rest — O(|smallest label|), not O(|N|).
        """
        wanted = frozenset(labels)
        if not wanted:
            yield from self.nodes.values()
            return
        candidate_lists = []
        for label in wanted:
            ids = self._by_label.get(label)
            if ids is None:
                return  # some label has no nodes at all
            candidate_lists.append(ids)
        smallest = min(candidate_lists, key=len)
        for node_id in smallest:
            node = self.nodes[node_id]
            if wanted <= node.labels:
                yield node

    def _prop_buckets(
        self,
    ) -> Dict[Tuple[str, str], Dict[tuple, Tuple[NodeId, ...]]]:
        """The (label, property-key, value) equality index, built lazily.

        Buckets list node ids in global node order (``nodes`` insertion
        order), so a seek enumerates exactly the subsequence a label scan
        would — the invariant :meth:`patched` maintains incrementally.
        Memoized on first use; construction is O(Σ labels × properties).
        """
        index = self._prop_index
        if index is None:
            index = {}
            for node in self.nodes.values():
                for label_key, value_key in _prop_entries(node):
                    buckets = index.setdefault(label_key, {})
                    buckets[value_key] = buckets.get(value_key, ()) + (node.id,)
            object.__setattr__(self, "_prop_index", index)
        return index

    def nodes_with_property(
        self, label: str, key: str, value: Any
    ) -> Optional[Tuple[Node, ...]]:
        """Index seek: nodes with ``label`` whose ``key`` may equal ``value``.

        Returns ``None`` when the index cannot serve ``value`` (null, NaN,
        lists/maps, …) — the caller must fall back to a scan.  A non-None
        result is a *superset* of the true matches in global node order;
        callers still re-check properties with Cypher equality (e.g. the
        matcher's ``_bind_node``), which is what keeps seek and scan
        byte-identical.
        """
        value_key = property_index_key(value)
        if value_key is None:
            return None
        ids = self._prop_buckets().get((label, key), {}).get(value_key, ())
        return tuple(self.nodes[node_id] for node_id in ids)

    def rel_type_count(self, rel_type: str) -> int:
        """Number of relationships of ``rel_type`` (cheap statistic)."""
        return self._by_type.get(rel_type, 0)

    def rel_type_counts(self) -> Dict[str, int]:
        """All per-type relationship counts (cheap cardinality statistics)."""
        return dict(self._by_type)

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (served from the index).

        The public per-label statistic the pattern planner and the
        delta-evaluation layer cost their anchor choices with.
        """
        return len(self._by_label.get(label, ()))

    def label_counts(self) -> Dict[str, int]:
        """All per-label node counts (cheap cardinality statistics)."""
        return {label: len(ids) for label, ids in self._by_label.items()}

    @property
    def order(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def size(self) -> int:
        """Number of relationships."""
        return len(self.relationships)

    def is_empty(self) -> bool:
        return not self.nodes and not self.relationships

    def degree(self, node_id: NodeId) -> int:
        return len(self._out.get(node_id, ())) + len(self._in.get(node_id, ()))

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Node):
            return self.nodes.get(item.id) == item
        if isinstance(item, Relationship):
            return self.relationships.get(item.id) == item
        return False

    def __eq__(self, other: object) -> bool:
        """Structural equality: same elements with the same descriptions.

        (Node/Relationship ``==`` is identity-by-id, as Cypher's value
        equality needs; graph equality must compare the full content.)
        """
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        if set(self.nodes) != set(other.nodes):
            return False
        if set(self.relationships) != set(other.relationships):
            return False
        for node_id, node in self.nodes.items():
            if not _same_node(node, other.nodes[node_id]):
                return False
        for rel_id, rel in self.relationships.items():
            if not _same_relationship(rel, other.relationships[rel_id]):
                return False
        return True

    def __hash__(self) -> int:
        return hash((frozenset(self.nodes), frozenset(self.relationships)))

    def __reduce__(self):
        # mappingproxy fields are not picklable; rebuild (and re-index)
        # from the element collections on the receiving side.
        return (
            _rebuild_graph,
            (tuple(self.nodes.values()), tuple(self.relationships.values())),
        )

    def __repr__(self) -> str:
        return f"PropertyGraph(order={self.order}, size={self.size})"


def _rebuild_graph(
    nodes: Tuple[Node, ...], relationships: Tuple[Relationship, ...]
) -> "PropertyGraph":
    """Unpickle target for :meth:`PropertyGraph.__reduce__`."""
    return PropertyGraph.of(nodes, relationships)


_EMPTY_GRAPH = PropertyGraph.of()


@dataclass(frozen=True)
class Path:
    """A path: alternating nodes and relationships.

    ``nodes`` has length ``len(relationships) + 1``.  A zero-length path is
    a single node.  Relationships may be traversed against their stored
    direction; the sequence in ``nodes`` records the traversal order.
    """

    nodes: Tuple[Node, ...]
    relationships: Tuple[Relationship, ...] = ()

    def __post_init__(self):
        if len(self.nodes) != len(self.relationships) + 1:
            raise GraphConsistencyError(
                "a path needs exactly one more node than relationships"
            )
        for index, rel in enumerate(self.relationships):
            step = {self.nodes[index].id, self.nodes[index + 1].id}
            if step != {rel.src, rel.trg}:
                raise GraphConsistencyError(
                    f"path step {index} does not follow relationship {rel.id}"
                )

    @property
    def length(self) -> int:
        """Path length = number of relationships (Cypher ``length()``)."""
        return len(self.relationships)

    @property
    def start(self) -> Node:
        return self.nodes[0]

    @property
    def end(self) -> Node:
        return self.nodes[-1]

    def reversed(self) -> "Path":
        return Path(tuple(reversed(self.nodes)), tuple(reversed(self.relationships)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and tuple(n.id for n in self.nodes) == tuple(n.id for n in other.nodes)
            and tuple(r.id for r in self.relationships)
            == tuple(r.id for r in other.relationships)
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(node.id for node in self.nodes),
                tuple(rel.id for rel in self.relationships),
            )
        )

    def __repr__(self) -> str:
        if not self.relationships:
            return f"<path (n{self.nodes[0].id})>"
        parts = [f"(n{self.nodes[0].id})"]
        for index, rel in enumerate(self.relationships):
            nxt = self.nodes[index + 1]
            if rel.src == self.nodes[index].id:
                parts.append(f"-[r{rel.id}:{rel.type}]->(n{nxt.id})")
            else:
                parts.append(f"<-[r{rel.id}:{rel.type}]-(n{nxt.id})")
        return "<path " + "".join(parts) + ">"
