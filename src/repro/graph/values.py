"""Cypher value universe and three-valued logic.

The value set 𝒱 of the paper (Section 3.1) contains integers, floats,
strings, booleans, ``null``, lists, and maps.  We represent values with
plain Python objects and represent Cypher ``null`` with Python ``None``.

Cypher follows SQL-style three-valued logic: any comparison involving
``null`` is *unknown*, and ``WHERE`` keeps only rows whose predicate is
*true*.  The :class:`Ternary` enum models the three truth values, and the
``and3``/``or3``/``not3``/``xor3`` helpers implement the connectives.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Optional

from repro.errors import CypherTypeError

#: Cypher ``null`` is represented by Python ``None`` throughout the library.
NULL = None


class Ternary(enum.Enum):
    """Three-valued (Kleene) truth values used by Cypher predicates."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    @staticmethod
    def of(value: Any) -> "Ternary":
        """Coerce a Cypher value into a truth value.

        ``null`` maps to UNKNOWN; booleans map to themselves; anything else
        is a type error (Cypher does not truth-test arbitrary values).
        """
        if value is NULL:
            return Ternary.UNKNOWN
        if isinstance(value, Ternary):
            return value
        if value is True:
            return Ternary.TRUE
        if value is False:
            return Ternary.FALSE
        raise CypherTypeError(f"expected a boolean or null, got {value!r}")

    def to_value(self) -> Optional[bool]:
        """Convert back to a Cypher value (``True``/``False``/``null``)."""
        if self is Ternary.TRUE:
            return True
        if self is Ternary.FALSE:
            return False
        return NULL

    @property
    def is_true(self) -> bool:
        return self is Ternary.TRUE


def and3(left: Ternary, right: Ternary) -> Ternary:
    if left is Ternary.FALSE or right is Ternary.FALSE:
        return Ternary.FALSE
    if left is Ternary.TRUE and right is Ternary.TRUE:
        return Ternary.TRUE
    return Ternary.UNKNOWN


def or3(left: Ternary, right: Ternary) -> Ternary:
    if left is Ternary.TRUE or right is Ternary.TRUE:
        return Ternary.TRUE
    if left is Ternary.FALSE and right is Ternary.FALSE:
        return Ternary.FALSE
    return Ternary.UNKNOWN


def not3(operand: Ternary) -> Ternary:
    if operand is Ternary.TRUE:
        return Ternary.FALSE
    if operand is Ternary.FALSE:
        return Ternary.TRUE
    return Ternary.UNKNOWN


def xor3(left: Ternary, right: Ternary) -> Ternary:
    if left is Ternary.UNKNOWN or right is Ternary.UNKNOWN:
        return Ternary.UNKNOWN
    if (left is Ternary.TRUE) != (right is Ternary.TRUE):
        return Ternary.TRUE
    return Ternary.FALSE


def is_numeric(value: Any) -> bool:
    """True for Cypher numbers (int/float but *not* bool)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def cypher_equals(left: Any, right: Any) -> Ternary:
    """Cypher ``=``: null-propagating equality.

    Lists and maps compare element-wise; a ``null`` anywhere inside makes
    the comparison UNKNOWN unless a structural difference already decides
    it (Cypher's actual rules are subtle; we implement the commonly-cited
    openCypher behaviour: equality of containers with nulls is UNKNOWN
    unless lengths/keys differ, which yields FALSE).
    """
    if left is NULL or right is NULL:
        return Ternary.UNKNOWN
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return Ternary.TRUE if left == right else Ternary.FALSE
        return Ternary.FALSE
    if is_numeric(left) and is_numeric(right):
        return Ternary.TRUE if left == right else Ternary.FALSE
    if isinstance(left, str) and isinstance(right, str):
        return Ternary.TRUE if left == right else Ternary.FALSE
    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            return Ternary.FALSE
        result = Ternary.TRUE
        for item_left, item_right in zip(left, right):
            part = cypher_equals(item_left, item_right)
            if part is Ternary.FALSE:
                return Ternary.FALSE
            if part is Ternary.UNKNOWN:
                result = Ternary.UNKNOWN
        return result
    if isinstance(left, dict) and isinstance(right, dict):
        if set(left) != set(right):
            return Ternary.FALSE
        result = Ternary.TRUE
        for key in left:
            part = cypher_equals(left[key], right[key])
            if part is Ternary.FALSE:
                return Ternary.FALSE
            if part is Ternary.UNKNOWN:
                result = Ternary.UNKNOWN
        return result
    # Graph entities (nodes/relationships/paths) compare by identity value.
    if type(left) is type(right):
        return Ternary.TRUE if left == right else Ternary.FALSE
    return Ternary.FALSE


_TYPE_ORDER = {"map": 0, "node": 1, "relationship": 2, "list": 3, "path": 4,
               "string": 5, "boolean": 6, "number": 7}


def _order_class(value: Any) -> str:
    # Imported lazily to avoid a circular dependency with graph.model.
    from repro.graph.model import Node, Path, Relationship

    if isinstance(value, Node):
        return "node"
    if isinstance(value, Relationship):
        return "relationship"
    if isinstance(value, Path):
        return "path"
    if isinstance(value, bool):
        return "boolean"
    if is_numeric(value):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "list"
    if isinstance(value, dict):
        return "map"
    raise CypherTypeError(f"unorderable value {value!r}")


def cypher_compare(left: Any, right: Any) -> Optional[int]:
    """Ordering comparison used by ``<``/``>``/``<=``/``>=``.

    Returns negative/zero/positive like ``cmp`` or ``None`` when the
    comparison is undefined (null involved, or incomparable types under
    Cypher's comparability rules).
    """
    if left is NULL or right is NULL:
        return None
    left_class, right_class = _order_class(left), _order_class(right)
    if left_class != right_class:
        return None
    if left_class == "number":
        if isinstance(left, float) and math.isnan(left):
            return None
        if isinstance(right, float) and math.isnan(right):
            return None
        return (left > right) - (left < right)
    if left_class in ("string", "boolean"):
        return (left > right) - (left < right)
    if left_class == "list":
        for item_left, item_right in zip(left, right):
            part = cypher_compare(item_left, item_right)
            if part is None:
                return None
            if part != 0:
                return part
        return (len(left) > len(right)) - (len(left) < len(right))
    return None


def order_key(value: Any) -> tuple:
    """Total-order sort key for ``ORDER BY``.

    Cypher's ``ORDER BY`` imposes a global order across types, with
    ``null`` ordered last in ascending order.  The exact cross-type order
    is implementation-defined; we use a stable documented one.
    """
    if value is NULL:
        return (2, 0, 0)
    cls = _order_class(value)
    if cls == "number":
        if isinstance(value, float) and math.isnan(value):
            return (1, 0, 0)
        return (0, _TYPE_ORDER[cls], float(value))
    if cls in ("string",):
        return (0, _TYPE_ORDER[cls], value)
    if cls == "boolean":
        return (0, _TYPE_ORDER[cls], int(value))
    if cls == "list":
        return (0, _TYPE_ORDER[cls], tuple(order_key(item) for item in value))
    if cls == "map":
        return (0, _TYPE_ORDER[cls],
                tuple(sorted((key, order_key(val)) for key, val in value.items())))
    # Graph entities: order by identifier for stability.
    return (0, _TYPE_ORDER[cls], getattr(value, "id", 0))


def hashable(value: Any) -> Any:
    """Deep-freeze a Cypher value so it can live in sets/dict keys.

    Needed for bag semantics (counting duplicate records) and DISTINCT.
    ``null`` maps to a dedicated sentinel so it groups with itself, which
    matches Cypher's DISTINCT/aggregation treatment of null.
    """
    if value is NULL:
        return ("\x00null",)
    if isinstance(value, list):
        return ("\x00list", tuple(hashable(item) for item in value))
    if isinstance(value, dict):
        return ("\x00map",
                tuple(sorted((key, hashable(val)) for key, val in value.items())))
    if isinstance(value, bool):
        return ("\x00bool", value)
    if is_numeric(value):
        # 1 and 1.0 are the same Cypher value.
        return ("\x00num", float(value))
    return value


def property_index_key(value: Any) -> Optional[tuple]:
    """Equality-index bucket key for a scalar property value.

    Returns ``None`` for values the (label, property-key, value) index
    cannot serve: ``null``, NaN (equal to nothing, including itself),
    non-scalars, and integers too large to normalize to a float.  Keys
    are type-tagged to mirror :func:`cypher_equals` exactly — booleans
    never equal numbers, while ``1`` and ``1.0`` share a bucket.  A seek
    for an indexable value is guaranteed to visit a *superset* of the
    nodes whose stored value Cypher-equals it (callers re-check with
    :func:`cypher_equals`), and must fall back to a scan on ``None``.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if is_numeric(value):
        if value != value:  # NaN
            return None
        try:
            return ("num", float(value))
        except OverflowError:
            return None
    if isinstance(value, str):
        return ("str", value)
    return None


def values_distinct(values: Iterable[Any]) -> list:
    """Deduplicate preserving first-seen order, using Cypher value equality."""
    seen = set()
    out = []
    for value in values:
        key = hashable(value)
        if key not in seen:
            seen.add(key)
            out.append(value)
    return out
