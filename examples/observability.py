#!/usr/bin/env python3
"""Observability tour: one traced, metered engine run end to end.

Builds the full stack through the unified front door
(:func:`repro.build_engine`), runs the paper's fraud-detection workload,
and then walks every observability surface:

* ``EXPLAIN ANALYZE`` — the static plan plus observed stage timings;
* the trace — one ``evaluate`` span tree per evaluation, with the
  window-advance / match / report / sink stages as children;
* the metrics registry — counters and stage histograms, exported as a
  schema-stamped JSON document and as Prometheus exposition text.

Run:  python examples/observability.py
"""

import json
import os
import tempfile

from repro import EngineConfig, build_engine
from repro.obs.export import (
    metrics_document,
    to_prometheus,
    trace_document,
    write_json,
)
from repro.obs.schema import validate_metrics, validate_status, validate_trace
from repro.seraph import explain_analyze
from repro.usecases.micromobility import (
    RentalStreamConfig,
    RentalStreamGenerator,
    student_trick_query,
)


def main():
    engine = build_engine(EngineConfig(
        delta_eval=True,
        resilient=True,
        observability=True,
    ))
    engine.register(student_trick_query(every="PT5M"))

    generator = RentalStreamGenerator(
        RentalStreamConfig(events=40, seed=11, stations=10, users=20,
                           vehicles=24)
    )
    emissions = engine.run_stream(generator.stream())
    print(f"Ran {len(emissions)} emissions with observability on.\n")

    # 1. EXPLAIN ANALYZE: the plan annotated with observed timings.
    print(explain_analyze(engine, "student_trick"))

    # 2. The trace: span trees covering every evaluation.
    tracer = engine.obs.tracer
    roots = tracer.to_dicts()
    evaluates = [root for root in roots if root["name"] == "evaluate"]
    print(f"\nTrace: {tracer.created} spans in {len(roots)} roots "
          f"({len(evaluates)} evaluations, {tracer.dropped} dropped)")
    first = evaluates[0]
    print(f"first evaluation ({first['tags']}):")
    for child in first["children"]:
        print(f"  - {child['name']}: {child['duration'] * 1000:.3f}ms "
              f"{child['tags'] or ''}")

    # 3. The documents: status, metrics, trace — all schema-validated.
    status = engine.unified_status()
    validate_status(status)
    metrics = metrics_document(engine.obs.registry)
    validate_metrics(metrics)
    trace = trace_document(tracer)
    validate_trace(trace)
    with tempfile.TemporaryDirectory() as tmp:
        path = write_json(os.path.join(tmp, "metrics.json"), metrics)
        size = os.path.getsize(path)
    print(f"\nDocuments validate: status (sections "
          f"{sorted(status)}), metrics ({size} bytes on disk), "
          f"trace ({trace['span_count']} spans)")

    # 4. Prometheus exposition, ready to scrape.
    exposition = to_prometheus(engine.obs.registry)
    counters = [line for line in exposition.splitlines()
                if line.endswith("_total") or "_total " in line]
    print("\nPrometheus counters:")
    for line in counters:
        if not line.startswith("#"):
            print(f"  {line}")

    engine_section = status["engine"]["queries"]["student_trick"]
    print(f"\nUnified status: {engine_section['evaluations']} evaluations, "
          f"{engine_section['delta']} via the delta path; "
          f"resilience ingested "
          f"{status['resilience']['metrics']['ingested']} elements.")


if __name__ == "__main__":
    main()
