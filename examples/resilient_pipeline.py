#!/usr/bin/env python3
"""The fault-tolerant runtime on the paper's running example.

Takes the Figure 1 rental stream and degrades it the way real feeds
degrade — malformed payloads, events arriving out of order, a sink
that fails transiently — then runs Listing 5 behind
:class:`repro.runtime.ResilientEngine` and shows that the emissions
still match the clean run:

1. **poison quarantine** — undecodable payloads land in a replayable
   dead-letter queue instead of aborting the run;
2. **bounded out-of-order tolerance** — a reorder buffer with allowed
   lateness re-sequences displaced events before ingestion;
3. **sink retry + circuit breaker** — a flaky sink that fails three
   times recovers without losing a single emission;
4. **checkpoint/restore** — the run is interrupted mid-stream,
   serialized to JSON, and finished by a fresh process-equivalent.

Run:  python examples/resilient_pipeline.py
"""

import json

from repro.runtime import (
    FailureSchedule,
    FlakySink,
    ResilientEngine,
)
from repro.runtime.resilient_sink import RetryPolicy
from repro.seraph import SeraphEngine
from repro.usecases.micromobility import (
    LISTING5_SERAPH,
    _t,
    figure1_stream,
)

UNTIL = _t("15:40")


def clean_baseline():
    engine = SeraphEngine()
    engine.register(LISTING5_SERAPH)
    return engine.run_stream(figure1_stream(), until=UNTIL)


def keys(emissions):
    return [(e.instant, sorted(map(repr, e.table))) for e in emissions]


def main():
    baseline = clean_baseline()
    stream = figure1_stream()

    # A degraded feed: two poison payloads, two displaced events.
    degraded = [
        stream[1],                 # 15:00 arrives first ...
        "{truncated json",         # ... alongside a corrupt line
        stream[0],                 # 14:45 shows up late
        stream[2],
        {"instant": "NaN"},        # and a half-formed record
        stream[4],                 # 15:40 overtakes 15:20
        stream[3],
    ]

    flaky = FlakySink(FailureSchedule.first(3))  # dies 3 times, recovers
    engine = ResilientEngine(
        allowed_lateness=1200,                   # 20 minutes of tolerance
        retry=RetryPolicy(max_attempts=4, seed=7),
        sleep=lambda _: None,                    # no real waiting here
    )
    engine.register(LISTING5_SERAPH, sink=flaky)
    emissions = engine.run_stream(degraded, until=UNTIL)

    print("== degraded feed, resilient run")
    print(f"   {engine.metrics.render()}")
    print(f"   quarantined payloads: {len(engine.dead_letters)}")
    for entry in engine.dead_letters:
        print(f"     - {entry.error}: {entry.reason}")
    assert keys(emissions) == keys(baseline)
    assert keys(flaky.delivered) == keys(baseline)
    print(f"   all {len(emissions)} emissions match the clean run, "
          f"none lost to the flaky sink")

    # Interrupt a second run mid-stream and resume from the checkpoint.
    first = ResilientEngine(allowed_lateness=1200)
    first.register(LISTING5_SERAPH)
    resumed = []
    for item in degraded[:4]:
        resumed.extend(first.ingest_item(item))
    document = first.checkpoint_json()

    restored = ResilientEngine.from_checkpoint(json.loads(document))
    for item in degraded[4:]:
        resumed.extend(restored.ingest_item(item))
    resumed.extend(restored.flush(UNTIL))

    print("== checkpoint/restore")
    print(f"   checkpoint document: {len(document)} bytes")
    assert keys(resumed) == keys(baseline)
    print(f"   resumed run reproduces all {len(resumed)} emissions")

    print("== final emission (Table 6)")
    print(emissions[-1].render())


if __name__ == "__main__":
    main()
