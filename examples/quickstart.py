#!/usr/bin/env python3
"""Quickstart: register a continuous Seraph query and feed it a stream.

Builds a tiny property graph stream by hand, registers one continuous
query, and prints every non-empty emission — the smallest end-to-end use
of the public API.

Run:  python examples/quickstart.py
"""

from repro import GraphBuilder, build_engine
from repro.graph.temporal import format_hhmm, hhmm
from repro.seraph import PrintingSink

QUERY = """
REGISTER QUERY big_transfers STARTING AT 2022-08-01T09:05
{
  MATCH (a:Account)-[t:TRANSFER]->(b:Account)
  WITHIN PT15M
  WHERE t.amount >= 1000
  EMIT a.name AS sender, b.name AS receiver, t.amount AS amount
  ON ENTERING EVERY PT5M
}
"""


def transfer_event(rel_id, sender, receiver, amount):
    """One stream event: a single transfer between two accounts.

    Node ids are stable per account so events unify under UNA.
    """
    accounts = {"alice": 1, "bob": 2, "carol": 3}
    builder = GraphBuilder()
    src = builder.add_node(["Account"], {"name": sender},
                           node_id=accounts[sender])
    trg = builder.add_node(["Account"], {"name": receiver},
                           node_id=accounts[receiver])
    builder.add_relationship(src, "TRANSFER", trg, {"amount": amount},
                             rel_id=rel_id)
    return builder.build()


def main():
    engine = build_engine()
    engine.register(QUERY, sink=PrintingSink())

    events = [
        ("09:02", transfer_event(1, "alice", "bob", 50)),
        ("09:07", transfer_event(2, "bob", "carol", 2500)),
        ("09:12", transfer_event(3, "alice", "carol", 1200)),
        ("09:31", transfer_event(4, "carol", "alice", 80)),
    ]
    for wall_clock, graph in events:
        instant = hhmm(wall_clock)
        print(f"-- event arrives at {format_hhmm(instant)} "
              f"({graph.size} transfer)")
        engine.advance_to(instant - 1)   # fire evaluations due before it
        engine.ingest(graph, instant)
    engine.advance_to(hhmm("09:40"))     # drain remaining evaluations

    collected = engine.registered("big_transfers").result
    print(f"\n{len(collected)} evaluations recorded; "
          "large transfers were reported exactly once each (ON ENTERING).")


if __name__ == "__main__":
    main()
