#!/usr/bin/env python3
"""Network monitoring with continuous z-score anomaly detection
(Section 4.1, Listing 2).

A synthetic data center emits one full-configuration property graph per
minute; an injected uplink fault forces affected racks onto a longer
detour.  The registered Seraph query continuously reports every route
whose length has z-score > 3 against the configured μ = 5 / σ = 0.3.

Run:  python examples/network_monitoring.py
"""

from repro.graph.temporal import format_hhmm
from repro.seraph import CollectingSink, SeraphEngine
from repro.usecases.network import (
    MEAN_HOPS,
    STD_HOPS,
    NetworkConfig,
    NetworkStreamGenerator,
    anomalous_routes_query,
)


def main():
    config = NetworkConfig(racks=8, routers=4, events=25, seed=13)
    generator = NetworkStreamGenerator(config)
    stream = generator.stream()
    print(f"Streaming {len(stream)} one-minute configuration snapshots "
          f"({config.racks} racks, {config.routers} top-of-rack routers).")

    engine = SeraphEngine()
    sink = CollectingSink()
    engine.register(anomalous_routes_query(), sink=sink)
    engine.run_stream(stream)

    print(f"\nEvaluations: {len(sink.emissions)}; "
          f"with anomalies: {len(sink.non_empty())}")
    print(f"(z-score threshold 3 against mu={MEAN_HOPS}, sigma={STD_HOPS}; "
          "a route is anomalous above "
          f"{MEAN_HOPS + 3 * STD_HOPS:.1f} hops)\n")

    for emission in sink.non_empty():
        down = sorted(generator.faults_at(emission.instant))
        routes = ", ".join(
            f"rack {record['rack_id']}: {record['hops']} hops"
            for record in emission.table
        )
        print(f"{format_hhmm(emission.instant)}  uplinks down: {down}  "
              f"anomalous routes: {routes}")

    if not sink.non_empty():
        print("No anomalies in this run — increase fault_rate or events.")
    else:
        print("\nNote the delay between a fault starting and its anomaly "
              "appearing: the 10-minute snapshot union keeps the healthy "
              "configuration alive until it slides out of the window.")


if __name__ == "__main__":
    main()
