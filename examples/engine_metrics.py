#!/usr/bin/env python3
"""Instrumented engine run: latency, throughput, and reuse statistics.

Runs the fraud-detection query over a synthetic RideAnywhere day and
prints the measurements a systems evaluation would report — comparing
the engine with and without the unchanged-window reuse optimization
(the P7 experiment, interactively).

Run:  python examples/engine_metrics.py
"""

from repro import EngineConfig, build_engine, instrumented_run
from repro.usecases.micromobility import (
    RentalStreamConfig,
    RentalStreamGenerator,
    student_trick_query,
)


def run(reuse: bool, stream):
    engine = build_engine(EngineConfig(reuse_unchanged_windows=reuse))
    engine.register(student_trick_query(every="PT1M"))
    return instrumented_run(engine, stream)


def main():
    generator = RentalStreamGenerator(
        RentalStreamConfig(events=24, seed=7, stations=12, users=30,
                           vehicles=35)
    )
    stream = generator.stream()
    print(f"Workload: {len(stream)} events, "
          f"{sum(e.graph.size for e in stream)} rentals/returns, "
          f"{len(generator.fraud_users)} planted fraudster(s); "
          "evaluation every minute, window 1h.\n")

    for reuse in (False, True):
        report = run(reuse, stream)
        label = "with reuse   " if reuse else "without reuse"
        print(f"{label}: {report.render()}")

    print("\n(The reuse arm skips re-evaluation whenever no event arrived "
          "since the last ET instant — identical emissions, lower mean "
          "latency. See benchmarks/test_bench_reuse.py for the pinned "
          "version.)")


if __name__ == "__main__":
    main()
