#!/usr/bin/env python3
"""The Listing 4 ingestion path: raw queue messages → MERGE → stream.

Reproduces the paper's deployment pipeline (Section 2 + Listing 4):
stations transmit raw rental/return messages; the connector loads them
into a persistent store with parameterized ``MERGE`` statements; every
five minutes the period's *delta* becomes one property-graph stream
event.  The resulting stream drives the Listing 5 continuous query and
reproduces Tables 5/6 — while the store converges to the merged graph of
Figure 2.

Run:  python examples/kafka_ingestion.py
"""

from repro.graph.temporal import format_hhmm
from repro.seraph import CollectingSink, SeraphEngine
from repro.usecases.ingestion import (
    LISTING4_RENTAL,
    IngestionPipeline,
    running_example_messages,
)
from repro.usecases.micromobility import LISTING5_SERAPH, _t


def main():
    print("Ingestion statement (Listing 4 style):")
    print(LISTING4_RENTAL)

    pipeline = IngestionPipeline(period=300, start=_t("14:40"))
    for message in running_example_messages():
        pipeline.feed(message)
        print(f"  queued: {message.kind:<7} vehicle {message.vehicle} "
              f"@ station {message.station} by user {message.user} "
              f"({format_hhmm(message.time)})")

    elements = pipeline.seal_until(_t("15:40"))
    print(f"\nSealed {len(elements)} delivery batches:")
    for element in elements:
        print(f"  {format_hhmm(element.instant)}h: delta with "
              f"{element.graph.order} nodes, {element.graph.size} edges")

    store = pipeline.store.graph()
    print(f"\nPersistent store after ingestion (Figure 2): "
          f"{store.order} nodes, {store.size} relationships")

    engine = SeraphEngine()
    sink = CollectingSink()
    engine.register(LISTING5_SERAPH, sink=sink)
    engine.run_stream(elements, until=_t("15:40"))
    print("\nContinuous detection over the ingested stream:")
    for emission in sink.non_empty():
        users = [record["user_id"] for record in emission.table]
        print(f"  {format_hhmm(emission.instant)}h: "
              f"new violation by user(s) {users}")


if __name__ == "__main__":
    main()
