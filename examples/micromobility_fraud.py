#!/usr/bin/env python3
"""The paper's running example, end to end (Sections 2, 3.3, 5.4).

Replays the exact Figure 1 stream, then:

1. runs the Listing 1 one-time Cypher workaround at 15:40h → Table 2;
2. registers the Listing 5 Seraph query and replays the stream → the
   emissions of Tables 5 (15:15h) and 6 (15:40h);
3. prints both, in the paper's table style, side by side with the
   polling-baseline cross-check.

Run:  python examples/micromobility_fraud.py
"""

from repro.baselines import CypherPollingBaseline
from repro.cypher import run_cypher
from repro.graph.temporal import HOUR, MINUTE, format_hhmm
from repro.seraph import CollectingSink, SeraphEngine
from repro.stream.report import ReportPolicy
from repro.stream.timeline import TimeInterval
from repro.stream.tvt import TimeAnnotatedTable
from repro.usecases.micromobility import (
    LISTING1_CYPHER,
    LISTING5_SERAPH,
    _t,
    figure1_stream,
    figure2_graph,
)

COLUMNS = ["user_id", "station_id", "val_time", "hops"]


def show_table(title, table, interval=None):
    print(f"\n### {title}")
    pretty = table.__class__(
        [record.with_field("val_time", format_hhmm(record["val_time"]))
         for record in table],
        fields=table.fields,
    )
    if interval is not None:
        annotated = TimeAnnotatedTable(table=pretty, interval=interval)
        print(annotated.render(COLUMNS + ["win_start", "win_end"]))
    else:
        print(pretty.render(COLUMNS))


def main():
    stream = figure1_stream()
    print("Figure 1 stream:")
    for element in stream:
        print(f"  {format_hhmm(element.instant)}h: "
              f"{element.graph.order} nodes, {element.graph.size} rentals/returns")

    merged = figure2_graph()
    print(f"\nFigure 2 merged graph: {merged.order} nodes, "
          f"{merged.size} relationships")

    # --- Section 3.3: the one-time Cypher query (Table 2) -----------------
    window = TimeInterval(_t("14:40"), _t("15:40"))
    table2 = run_cypher(
        LISTING1_CYPHER,
        merged,
        parameters={"win_start": window.start, "win_end": window.end},
    )
    show_table("Table 2 — one-time Cypher at 15:40h", table2)
    show_table("Table 4 — time-annotated form", table2, interval=window)

    # --- Section 5.4: the Seraph continuous query -------------------------
    engine = SeraphEngine()
    sink = CollectingSink()
    engine.register(LISTING5_SERAPH, sink=sink)
    engine.run_stream(stream, until=_t("15:40"))

    print("\nContinuous run (EMIT ... ON ENTERING EVERY PT5M):")
    for emission in sink.emissions:
        status = f"{len(emission.table)} new match(es)" if not emission.is_empty() \
            else "nothing new"
        print(f"  eval @ {format_hhmm(emission.instant)}h: {status}")

    show_table(
        "Table 5 — Seraph output at 15:15h",
        sink.at(_t("15:15")).table.table,
        interval=sink.at(_t("15:15")).table.interval,
    )
    show_table(
        "Table 6 — Seraph output at 15:40h",
        sink.at(_t("15:40")).table.table,
        interval=sink.at(_t("15:40")).table.interval,
    )

    # --- Cross-check: the Section 3.3 polling workaround ------------------
    baseline = CypherPollingBaseline(
        LISTING1_CYPHER,
        starting_at=_t("14:45"),
        width=HOUR,
        period=5 * MINUTE,
        report=ReportPolicy.ON_ENTERING,
    )
    polls = baseline.run_stream(figure1_stream(), until=_t("15:40"))
    agreement = all(
        sorted(r["user_id"] for r in poll.table)
        == sorted(r["user_id"] for r in emission.table)
        for poll, emission in zip(polls, sink.emissions)
    )
    print(f"\nPolling workaround agrees with Seraph at every instant: "
          f"{agreement}")
    print(f"...but its persisted store kept all {baseline.store.size} "
          "relationships forever, while the engine retains only "
          f"{engine.retained_elements} live stream event(s).")


if __name__ == "__main__":
    main()
