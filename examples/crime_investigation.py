#!/usr/bin/env python3
"""Real-time surveillance on the POLE model (Section 4.2).

A synthetic Person-Object-Location-Event stream carries camera sightings
(``PASSED_BY``) and occasional crimes (``OCCURRED_AT``).  The continuous
query reports, as soon as the evidence is in the window, every person who
passed by a crime scene within 30 minutes of the crime — the paper's
Table 1 surveillance query.

Run:  python examples/crime_investigation.py
"""

from repro.graph.temporal import format_hhmm
from repro.seraph import CollectingSink, SeraphEngine
from repro.usecases.pole import (
    PoleConfig,
    PoleStreamGenerator,
    crime_suspects_query,
)


def main():
    config = PoleConfig(persons=30, locations=10, events=24, seed=99)
    generator = PoleStreamGenerator(config)
    stream = generator.stream()
    sightings = sum(element.graph.size for element in stream)
    print(f"Streaming {len(stream)} five-minute batches "
          f"({sightings} sightings/crime records, "
          f"{config.persons} persons, {config.locations} locations).")

    engine = SeraphEngine()
    sink = CollectingSink()
    engine.register(crime_suspects_query(), sink=sink)
    engine.run_stream(stream)

    print("\nSuspect reports (each evidence pair reported once, "
          "ON ENTERING):")
    found = set()
    for emission in sink.non_empty():
        for record in emission.table:
            found.add((record["person_id"], record["crime_id"]))
            print(
                f"  {format_hhmm(emission.instant)}  person "
                f"{record['person_id']:>2} near crime "
                f"{record['crime_id']} at location "
                f"{record['location_id']} (seen "
                f"{format_hhmm(record['seen_at'])})"
            )

    truth = generator.ground_truth()
    print(f"\nDetected {len(found)} (person, crime) pairs; "
          f"ground truth has {len(truth)}.")
    print("Exact match with ground truth:", found == truth)


if __name__ == "__main__":
    main()
