#!/usr/bin/env python3
"""A composed streaming pipeline using the future-work extensions.

Demonstrates, end to end, the three extension features the paper lists
as future work (Sections 6 and 8):

1. **partitioning** — the Figure 1 rental stream is split into logical
   ``rentedAt`` / ``returnedAt`` sub-streams (future work ii);
2. **multiple streams** — a continuous query joins the two sub-streams
   with per-stream ``FROM STREAM … WITHIN`` windows (future work i);
3. **graph-to-graph** — its emissions are materialized as a *new*
   property graph stream (future work iv) that a second, downstream
   continuous query consumes, with a **static graph** (future work iii)
   providing zone metadata.

Run:  python examples/streaming_pipeline.py
"""

from repro import GraphBuilder, SeraphEngine
from repro.graph.temporal import format_hhmm
from repro.seraph import (
    CollectingSink,
    ConstructingSink,
    GraphTemplate,
    NodeSpec,
    RelationshipSpec,
    explain,
)
from repro.stream.partition import by_relationship_type, partition_stream
from repro.usecases.micromobility import _t, figure1_stream

STAGE1 = """
REGISTER QUERY completed_rentals STARTING AT 2022-08-01T14:45
{
  MATCH (b:Bike)-[r:rentedAt]->(:Station)
    FROM STREAM rentedAt WITHIN PT1H
  MATCH (b2:Bike)-[t:returnedAt]->(s:Station)
    FROM STREAM returnedAt WITHIN PT1H
  WHERE b.id = b2.id AND t.user_id = r.user_id
    AND t.val_time > r.val_time
  EMIT r.user_id AS user_id, b.id AS bike_id, s.id AS station_id,
       t.duration AS minutes
  ON ENTERING EVERY PT5M
}
"""

STAGE2 = """
REGISTER QUERY zone_activity STARTING AT 2022-08-01T15:40
{
  MATCH (u:User)-[c:COMPLETED]->(s:Station)-[:IN_ZONE]->(z:Zone)
  WITHIN PT2H
  EMIT z.name AS zone, count(c) AS completed_rentals,
       avg(c.minutes) AS avg_minutes
  SNAPSHOT EVERY PT5M
}
"""

TEMPLATE = GraphTemplate(
    nodes=(
        NodeSpec(key="user_id", labels=("User",), properties=("user_id",)),
        NodeSpec(key="station_id", labels=("Station",),
                 properties=("station_id",), id_offset=0),
    ),
    relationships=(
        RelationshipSpec(src_key="user_id", trg_key="station_id",
                         rel_type="COMPLETED", properties=("minutes",)),
    ),
)


def zones_graph():
    """Static metadata: stations 1/2 are downtown, 3/4 are campus."""
    builder = GraphBuilder()
    downtown = builder.add_node(["Zone"], {"name": "downtown"}, node_id=800)
    campus = builder.add_node(["Zone"], {"name": "campus"}, node_id=801)
    for station, zone in ((1, downtown), (2, downtown), (3, campus),
                          (4, campus)):
        builder.add_node(["Station"], {"id": station}, node_id=station)
        builder.add_relationship(station, "IN_ZONE", zone,
                                 rel_id=8000 + station)
    return builder.build()


def main():
    # Stage 0: partition the raw stream into logical sub-streams.
    partitions = partition_stream(figure1_stream(), by_relationship_type())
    print("Partitions:",
          {name: len(elements) for name, elements in partitions.items()})

    # Stage 1: join the sub-streams; construct an output graph stream.
    stage1 = SeraphEngine()
    constructing = ConstructingSink(TEMPLATE)
    stage1.register(STAGE1, sink=constructing)
    print("\n" + explain(STAGE1) + "\n")
    stage1.run_streams(partitions, until=_t("15:40"))
    print(f"Stage 1 produced {len(constructing.elements)} output events:")
    for element in constructing.elements:
        completions = [
            f"user {rel.property('user_id') or rel.src} -> "
            f"station {rel.trg} ({rel.property('minutes')} min)"
            for rel in element.graph.relationships.values()
        ]
        print(f"  {format_hhmm(element.instant)}: {completions}")

    # Stage 2: downstream query over the constructed stream + static zones.
    stage2 = SeraphEngine(static_graph=zones_graph())
    sink = CollectingSink()
    stage2.register(STAGE2, sink=sink)
    stage2.run_stream(constructing.elements, until=_t("15:40"))
    final = sink.emissions[-1]
    print(f"\nZone activity at {format_hhmm(final.instant)}:")
    print(final.table.render(["zone", "completed_rentals", "avg_minutes"]))


if __name__ == "__main__":
    main()
